//! Trainable CTR models with manual backpropagation.
//!
//! Small but real versions of the Table III models: embeddings pooled per
//! table, an interaction stage (plain concat, pairwise dots, or target
//! attention), and a two-layer MLP head. Everything trains end to end —
//! embedding rows included — so measured AUC reflects genuine learning.

use crate::nn::{bce_with_logits, predict, Linear};
use crate::optimizer::Adagrad;
use crate::tensor::Matrix;
use picasso_data::{Batch, DatasetSpec};
use picasso_embedding::EmbeddingTable;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// The interaction stage of a trainable model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Concat pooled embeddings (W&D / DeepFM deep part).
    Deep,
    /// Concat plus pairwise dot products (DLRM / DeepFM FM part).
    DotDeep,
    /// Target attention over sequence tables (DIN).
    Attention,
    /// Target attention with a recency prior (DIEN-style interest
    /// evolution).
    Evolution,
}

/// Embedding dimension of the trainable models.
pub const EMB_DIM: usize = 8;

/// A trainable CTR model over a dataset's tables.
#[derive(Debug)]
pub struct CtrModel {
    variant: Variant,
    /// One embedding table per table group.
    tables: BTreeMap<usize, EmbeddingTable>,
    /// Table ids in order (the feature layout).
    table_order: Vec<usize>,
    /// Which tables are sequences (attention-pooled under
    /// Attention/Evolution).
    is_seq: BTreeMap<usize, bool>,
    l1: Linear,
    l2: Linear,
    opt1: Adagrad,
    opt2: Adagrad,
    emb_lr: f32,
    input_width: usize,
}

/// Per-step training telemetry.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// Mean BCE loss of the batch.
    pub loss: f64,
}

/// Dense gradients of one step (delayed under async training).
#[derive(Debug)]
pub struct DenseGrads {
    dw1: Matrix,
    db1: Vec<f32>,
    dw2: Matrix,
    db2: Vec<f32>,
    /// Sparse gradients: (table, id, grad).
    sparse: Vec<(usize, u64, [f32; EMB_DIM])>,
}

impl CtrModel {
    /// Builds a model for `data` (tables of `data` are embedded at
    /// [`EMB_DIM`] regardless of the spec's logical dims).
    pub fn new(data: &DatasetSpec, variant: Variant, lr: f32, seed: u64) -> CtrModel {
        let mut tables = BTreeMap::new();
        let mut is_seq = BTreeMap::new();
        let mut per_table_fields: BTreeMap<usize, usize> = BTreeMap::new();
        let mut multi_hot: BTreeMap<usize, bool> = BTreeMap::new();
        for f in &data.fields {
            tables
                .entry(f.table_group)
                .or_insert_with(|| EmbeddingTable::new(EMB_DIM, seed ^ f.table_group as u64));
            *per_table_fields.entry(f.table_group).or_insert(0) += 1;
            if f.avg_ids > 1.5 {
                multi_hot.insert(f.table_group, true);
            }
        }
        for (&t, &n) in &per_table_fields {
            is_seq.insert(t, n > 1 || multi_hot.get(&t).copied().unwrap_or(false));
        }
        let table_order: Vec<usize> = tables.keys().copied().collect();
        let n = table_order.len();
        let dots = if variant == Variant::DotDeep {
            n * (n - 1) / 2
        } else {
            0
        };
        let input_width = n * EMB_DIM + dots + data.numeric;
        let hidden = 32;
        CtrModel {
            variant,
            tables,
            table_order,
            is_seq,
            l1: Linear::new(input_width, hidden, true, seed ^ 0xAA),
            l2: Linear::new(hidden, 1, false, seed ^ 0xBB),
            opt1: Adagrad::new(input_width, hidden, lr),
            opt2: Adagrad::new(hidden, 1, lr),
            emb_lr: lr,
            input_width,
        }
    }

    /// Width of the MLP input.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Pools one instance's IDs for one table; returns the pooled vector and
    /// the attention weights per id (uniform when not attending).
    fn pool(
        &mut self,
        table: usize,
        ids: &[u64],
        target: Option<&[f32; EMB_DIM]>,
    ) -> ([f32; EMB_DIM], Vec<f32>) {
        let mut out = [0.0f32; EMB_DIM];
        if ids.is_empty() {
            return (out, Vec::new());
        }
        let attend = matches!(self.variant, Variant::Attention | Variant::Evolution)
            && self.is_seq[&table]
            && target.is_some()
            && ids.len() > 1;
        let t = self.tables.get_mut(&table).expect("known table");
        let rows: Vec<[f32; EMB_DIM]> = ids
            .iter()
            .map(|&id| {
                let mut r = [0.0f32; EMB_DIM];
                r.copy_from_slice(t.row(id));
                r
            })
            .collect();
        let weights = if attend {
            let tgt = target.expect("attention needs a target");
            let scale = 1.0 / (EMB_DIM as f32).sqrt();
            let recency = matches!(self.variant, Variant::Evolution);
            let mut scores: Vec<f32> = rows
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let dot: f32 = r.iter().zip(tgt).map(|(a, b)| a * b).sum();
                    let prior = if recency {
                        // Later positions (more recent behaviour) weigh more.
                        0.1 * (i as f32 - ids.len() as f32 + 1.0)
                    } else {
                        0.0
                    };
                    dot * scale + prior
                })
                .collect();
            let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for s in &mut scores {
                *s = (*s - max).exp();
                sum += *s;
            }
            for s in &mut scores {
                *s /= sum;
            }
            scores
        } else {
            vec![1.0 / ids.len() as f32; ids.len()]
        };
        for (r, &w) in rows.iter().zip(&weights) {
            for (o, &v) in out.iter_mut().zip(r) {
                *o += w * v;
            }
        }
        (out, weights)
    }

    /// Forward pass over a batch: builds the MLP input and returns logits
    /// plus the pooling bookkeeping needed for backward.
    fn forward(&mut self, batch: &Batch, data: &DatasetSpec) -> (Matrix, ForwardState) {
        let n_tables = self.table_order.len();
        let mut x = Matrix::zeros(batch.size, self.input_width);
        let mut pooled = vec![[0.0f32; EMB_DIM]; batch.size * n_tables];
        let mut weights: Vec<Vec<f32>> = Vec::with_capacity(batch.size * n_tables);

        // Group the batch's fields by table.
        let mut table_fields: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (fi, f) in data.fields.iter().enumerate() {
            table_fields.entry(f.table_group).or_default().push(fi);
        }
        // Target for attention: pooled first non-sequence table.
        let target_table = self
            .table_order
            .iter()
            .copied()
            .find(|t| !self.is_seq[t])
            .unwrap_or(self.table_order[0]);

        let mut instance_ids: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
        for i in 0..batch.size {
            for (&table, fields) in &table_fields {
                let mut ids = Vec::new();
                for &fi in fields {
                    ids.extend_from_slice(batch.fields[fi].instance(i));
                }
                instance_ids.insert((i, table), ids);
            }
        }

        for i in 0..batch.size {
            // Pool the target table first.
            let (tgt, wt) = {
                let ids = instance_ids[&(i, target_table)].clone();
                self.pool(target_table, &ids, None)
            };
            for (ti, &table) in self.table_order.clone().iter().enumerate() {
                let (p, w) = if table == target_table {
                    (tgt, wt.clone())
                } else {
                    let ids = instance_ids[&(i, table)].clone();
                    self.pool(table, &ids, Some(&tgt))
                };
                pooled[i * n_tables + ti] = p;
                weights.push(w);
                let xrow = x.row_mut(i);
                xrow[ti * EMB_DIM..(ti + 1) * EMB_DIM].copy_from_slice(&p);
            }
            // Pairwise dots.
            if self.variant == Variant::DotDeep {
                let mut k = n_tables * EMB_DIM;
                for a in 0..n_tables {
                    for b in (a + 1)..n_tables {
                        let pa = pooled[i * n_tables + a];
                        let pb = pooled[i * n_tables + b];
                        let dot: f32 = pa.iter().zip(&pb).map(|(x, y)| x * y).sum();
                        x.set(i, k, dot);
                        k += 1;
                    }
                }
            }
            // Dense features.
            if data.numeric > 0 {
                let base = self.input_width - data.numeric;
                let xrow = x.row_mut(i);
                xrow[base..]
                    .copy_from_slice(&batch.dense[i * data.numeric..(i + 1) * data.numeric]);
            }
        }

        let h = self.l1.forward(&x);
        let z = self.l2.forward(&h);
        (
            z,
            ForwardState {
                pooled,
                weights,
                instance_ids,
                target_table,
            },
        )
    }

    /// One training step: forward, loss, backward; returns the loss and the
    /// gradients (application is the caller's choice — immediate for
    /// synchronous training, delayed for async PS).
    pub fn step(&mut self, batch: &Batch, data: &DatasetSpec) -> (StepStats, DenseGrads) {
        let (z, state) = self.forward(batch, data);
        let (loss, dz) = bce_with_logits(&z, &batch.labels);

        let (mut dw2, mut db2) = self.l2.grad_buffers();
        let dh = self.l2.backward(dz, &mut dw2, &mut db2);
        let (mut dw1, mut db1) = self.l1.grad_buffers();
        let dx = self.l1.backward(dh, &mut dw1, &mut db1);

        let sparse = self.embedding_grads(&dx, batch.size, &state);
        (
            StepStats { loss },
            DenseGrads {
                dw1,
                db1,
                dw2,
                db2,
                sparse,
            },
        )
    }

    /// Applies a (possibly stale) gradient.
    pub fn apply(&mut self, g: &DenseGrads) {
        self.opt1
            .step(&mut self.l1.w, &mut self.l1.b, &g.dw1, &g.db1);
        self.opt2
            .step(&mut self.l2.w, &mut self.l2.b, &g.dw2, &g.db2);
        for (table, id, grad) in &g.sparse {
            self.tables
                .get_mut(table)
                .expect("known table")
                .apply_gradient(*id, grad, self.emb_lr);
        }
    }

    /// Scores a batch (no caching of state).
    pub fn predict(&mut self, batch: &Batch, data: &DatasetSpec) -> Vec<f64> {
        let (z, _) = self.forward(batch, data);
        predict(&z)
    }

    /// Propagates `dx` (gradient of the MLP input) back into per-ID
    /// embedding gradients, through the pooling weights and pairwise dots.
    /// Attention weights are treated as constants (a straight-through
    /// approximation documented in DESIGN.md).
    fn embedding_grads(
        &self,
        dx: &Matrix,
        batch_size: usize,
        state: &ForwardState,
    ) -> Vec<(usize, u64, [f32; EMB_DIM])> {
        let n_tables = self.table_order.len();
        let mut grads: HashMap<(usize, u64), [f32; EMB_DIM]> = HashMap::new();
        for i in 0..batch_size {
            // Gradient w.r.t. each pooled vector: direct slice + dot terms.
            let mut dpooled = vec![[0.0f32; EMB_DIM]; n_tables];
            let xrow = dx.row(i);
            for (ti, dp) in dpooled.iter_mut().enumerate() {
                dp.copy_from_slice(&xrow[ti * EMB_DIM..(ti + 1) * EMB_DIM]);
            }
            if self.variant == Variant::DotDeep {
                let mut k = n_tables * EMB_DIM;
                for a in 0..n_tables {
                    for b in (a + 1)..n_tables {
                        let g = xrow[k];
                        let pa = state.pooled[i * n_tables + a];
                        let pb = state.pooled[i * n_tables + b];
                        for j in 0..EMB_DIM {
                            dpooled[a][j] += g * pb[j];
                            dpooled[b][j] += g * pa[j];
                        }
                        k += 1;
                    }
                }
            }
            // Through the pooling weights to each id.
            for (ti, &table) in self.table_order.iter().enumerate() {
                let ids = &state.instance_ids[&(i, table)];
                if ids.is_empty() {
                    continue;
                }
                let w = &state.weights[i * n_tables + ti];
                for (pos, &id) in ids.iter().enumerate() {
                    let weight = if w.is_empty() {
                        1.0 / ids.len() as f32
                    } else {
                        w[pos]
                    };
                    let e = grads.entry((table, id)).or_insert([0.0; EMB_DIM]);
                    for j in 0..EMB_DIM {
                        e[j] += weight * dpooled[ti][j];
                    }
                }
            }
        }
        let _ = state.target_table;
        grads.into_iter().map(|((t, id), g)| (t, id, g)).collect()
    }
}

fn encode_matrix(e: &mut picasso_ckpt::Encoder, m: &Matrix) {
    e.u64(m.rows() as u64);
    e.u64(m.cols() as u64);
    e.f32_slice(m.as_slice());
}

fn decode_matrix(
    d: &mut picasso_ckpt::Decoder<'_>,
    want_rows: usize,
    want_cols: usize,
) -> Result<Matrix, picasso_ckpt::CodecError> {
    let rows = d.u64()? as usize;
    let cols = d.u64()? as usize;
    if rows != want_rows || cols != want_cols {
        return Err(picasso_ckpt::CodecError::Invalid(format!(
            "matrix shape {rows}x{cols}, model expects {want_rows}x{want_cols}"
        )));
    }
    let data = d.f32_slice()?;
    if data.len() != rows * cols {
        return Err(picasso_ckpt::CodecError::Invalid(format!(
            "matrix payload {} values for {rows}x{cols}",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn decode_bias(
    d: &mut picasso_ckpt::Decoder<'_>,
    want: usize,
) -> Result<Vec<f32>, picasso_ckpt::CodecError> {
    let b = d.f32_slice()?;
    if b.len() != want {
        return Err(picasso_ckpt::CodecError::Invalid(format!(
            "bias length {}, model expects {want}",
            b.len()
        )));
    }
    Ok(b)
}

/// Checkpoint/restore surface of the model: dense parameters (MLP weights,
/// biases, Adagrad accumulators) serialize to one shard; embedding tables
/// are exposed so the recovery driver can shard them individually.
impl CtrModel {
    /// Serializes every dense parameter and optimizer accumulator.
    pub fn dense_snapshot(&self) -> Vec<u8> {
        let mut e = picasso_ckpt::Encoder::new();
        encode_matrix(&mut e, &self.l1.w);
        e.f32_slice(&self.l1.b);
        encode_matrix(&mut e, &self.l2.w);
        e.f32_slice(&self.l2.b);
        encode_matrix(&mut e, self.opt1.acc_w());
        e.f32_slice(self.opt1.acc_b());
        encode_matrix(&mut e, self.opt2.acc_w());
        e.f32_slice(self.opt2.acc_b());
        e.finish()
    }

    /// Restores dense parameters from [`CtrModel::dense_snapshot`] bytes.
    /// Shapes are validated against the live model.
    pub fn restore_dense(&mut self, bytes: &[u8]) -> Result<(), picasso_ckpt::CodecError> {
        let mut d = picasso_ckpt::Decoder::new(bytes);
        let w1 = decode_matrix(&mut d, self.l1.w.rows(), self.l1.w.cols())?;
        let b1 = decode_bias(&mut d, self.l1.b.len())?;
        let w2 = decode_matrix(&mut d, self.l2.w.rows(), self.l2.w.cols())?;
        let b2 = decode_bias(&mut d, self.l2.b.len())?;
        let a1w = decode_matrix(&mut d, self.l1.w.rows(), self.l1.w.cols())?;
        let a1b = decode_bias(&mut d, self.l1.b.len())?;
        let a2w = decode_matrix(&mut d, self.l2.w.rows(), self.l2.w.cols())?;
        let a2b = decode_bias(&mut d, self.l2.b.len())?;
        d.finish()?;
        self.l1.w = w1;
        self.l1.b = b1;
        self.l2.w = w2;
        self.l2.b = b2;
        self.opt1.restore_acc(a1w, a1b);
        self.opt2.restore_acc(a2w, a2b);
        Ok(())
    }

    /// Table-group IDs in feature order.
    pub fn table_groups(&self) -> Vec<usize> {
        self.table_order.clone()
    }

    /// Read access to one embedding table.
    pub fn table(&self, group: usize) -> Option<&EmbeddingTable> {
        self.tables.get(&group)
    }

    /// Mutable access to one embedding table (checkpoint restore).
    pub fn table_mut(&mut self, group: usize) -> Option<&mut EmbeddingTable> {
        self.tables.get_mut(&group)
    }

    /// Clears the dirty sets of every table after a checkpoint captured them.
    pub fn mark_tables_clean(&mut self) {
        for t in self.tables.values_mut() {
            t.mark_clean();
        }
    }

    /// An FNV-1a digest over every parameter bit of the model — dense
    /// weights, optimizer accumulators, and all materialized embedding rows
    /// in sorted order. Two models agree on this digest iff their trainable
    /// state is bit-identical; the crash-and-recover proof rests on it.
    pub fn state_digest(&self) -> u64 {
        let mut bytes = self.dense_snapshot();
        for (&group, table) in &self.tables {
            let mut e = picasso_ckpt::Encoder::new();
            e.u64(group as u64);
            for id in table.materialized_ids() {
                e.u64(id);
                e.f32_slice(table.peek(id).expect("materialized"));
            }
            bytes.extend_from_slice(&e.finish());
        }
        picasso_ckpt::fnv1a64(&bytes)
    }
}

/// Forward bookkeeping for backward.
struct ForwardState {
    pooled: Vec<[f32; EMB_DIM]>,
    weights: Vec<Vec<f32>>,
    instance_ids: HashMap<(usize, usize), Vec<u64>>,
    target_table: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::{BatchGenerator, FieldSpec, IdDistribution};
    use std::sync::Arc;

    fn tiny_data(with_seq: bool) -> Arc<DatasetSpec> {
        let dist = IdDistribution::Zipf { s: 1.1 };
        let mut fields = vec![
            FieldSpec::one_hot("a", 500, EMB_DIM, dist, 0),
            FieldSpec::one_hot("b", 500, EMB_DIM, dist, 1),
            FieldSpec::one_hot("c", 500, EMB_DIM, dist, 2),
        ];
        if with_seq {
            fields.push(FieldSpec::one_hot("seq", 500, EMB_DIM, dist, 3).with_avg_ids(10.0));
        }
        DatasetSpec {
            name: "tiny".into(),
            numeric: 2,
            fields,
            instances: None,
        }
        .shared()
    }

    fn train_steps(variant: Variant, with_seq: bool, steps: usize) -> (f64, f64) {
        let data = tiny_data(with_seq);
        let mut gen = BatchGenerator::new(Arc::clone(&data), 77);
        let eval = gen.next_batch(512);
        let mut model = CtrModel::new(&data, variant, 0.1, 5);
        let before = crate::metrics::auc(&model.predict(&eval, &data), &eval.labels);
        let mut last_loss = f64::INFINITY;
        for _ in 0..steps {
            let b = gen.next_batch(128);
            let (stats, grads) = model.step(&b, &data);
            model.apply(&grads);
            last_loss = stats.loss;
        }
        let after = crate::metrics::auc(&model.predict(&eval, &data), &eval.labels);
        assert!(last_loss.is_finite());
        (before, after)
    }

    #[test]
    fn deep_model_learns() {
        let (before, after) = train_steps(Variant::Deep, false, 150);
        assert!(
            after > before + 0.05 && after > 0.6,
            "AUC should improve: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn dot_model_learns() {
        let (_, after) = train_steps(Variant::DotDeep, false, 60);
        assert!(after > 0.6, "AUC {after:.3}");
    }

    #[test]
    fn attention_model_learns_on_sequences() {
        let (_, after) = train_steps(Variant::Attention, true, 60);
        assert!(after > 0.6, "AUC {after:.3}");
    }

    #[test]
    fn evolution_model_learns_on_sequences() {
        let (_, after) = train_steps(Variant::Evolution, true, 60);
        assert!(after > 0.6, "AUC {after:.3}");
    }

    #[test]
    fn dense_snapshot_round_trips_bit_identically() {
        let data = tiny_data(false);
        let mut gen = BatchGenerator::new(Arc::clone(&data), 3);
        let mut model = CtrModel::new(&data, Variant::Deep, 0.1, 9);
        for _ in 0..5 {
            let b = gen.next_batch(64);
            let (_, g) = model.step(&b, &data);
            model.apply(&g);
        }
        let snap = model.dense_snapshot();
        let digest = model.state_digest();

        let mut other = CtrModel::new(&data, Variant::Deep, 0.1, 9);
        assert_ne!(other.state_digest(), digest, "trained state must differ");
        other.restore_dense(&snap).unwrap();
        for group in model.table_groups() {
            picasso_embedding::TableSnapshot::full(model.table(group).unwrap())
                .restore_full(other.table_mut(group).unwrap());
        }
        assert_eq!(other.state_digest(), digest, "restore reproduces every bit");
        assert_eq!(other.dense_snapshot(), snap);

        // Truncated payloads are rejected, leaving the model untouched.
        assert!(other.restore_dense(&snap[..snap.len() - 1]).is_err());
    }

    #[test]
    fn restore_dense_rejects_mismatched_shapes() {
        let data = tiny_data(false);
        let model = CtrModel::new(&data, Variant::Deep, 0.1, 1);
        // DotDeep has a wider input layer: its shard must not load.
        let mut other = CtrModel::new(&data, Variant::DotDeep, 0.1, 1);
        assert!(other.restore_dense(&model.dense_snapshot()).is_err());
    }

    #[test]
    fn input_width_accounts_for_dots_and_dense() {
        let data = tiny_data(false);
        let deep = CtrModel::new(&data, Variant::Deep, 0.1, 1);
        let dot = CtrModel::new(&data, Variant::DotDeep, 0.1, 1);
        assert_eq!(deep.input_width(), 3 * EMB_DIM + 2);
        assert_eq!(dot.input_width(), 3 * EMB_DIM + 3 + 2);
    }
}
