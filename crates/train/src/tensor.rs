//! A minimal dense matrix type with the operations the trainer needs.
//!
//! Row-major `f32` storage; just enough BLAS-like functionality for small
//! MLPs with manual backpropagation. No external numeric dependencies.

/// A row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw data slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw data slice, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self @ other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "shape mismatch in t_matmul");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let srow = self.row(r);
            let orow = other.row(r);
            for (k, &a) in srow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(k);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "shape mismatch in matmul_t");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let srow = self.row(r);
            for k in 0..other.rows {
                let orow = other.row(k);
                let mut acc = 0.0;
                for (a, b) in srow.iter().zip(orow) {
                    acc += a * b;
                }
                out.set(r, k, acc);
            }
        }
        out
    }

    /// Adds `other` scaled by `alpha` in place.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of each column (useful for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_calc() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        // a^T @ b via t_matmul equals transpose-then-matmul.
        let at = Matrix::from_fn(4, 3, |r, c| a.get(c, r));
        assert_eq!(a.t_matmul(&b).as_slice(), at.matmul(&b).as_slice());
        // a @ c^T via matmul_t.
        let c = Matrix::from_fn(5, 4, |r, cc| (r as f32 - cc as f32) * 0.25);
        let ct = Matrix::from_fn(4, 5, |r, cc| c.get(cc, r));
        let left = a.matmul_t(&c);
        let right = a.matmul(&ct);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn add_scaled_and_col_sums() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.col_sums(), vec![2.0, 3.0]);
    }

    #[test]
    fn row_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1., 2., 3.]);
        assert_eq!(m.row(0), &[0., 0., 0.]);
        assert_eq!(m.row(1), &[1., 2., 3.]);
        assert_eq!(m.get(1, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
