//! Checkpoint property tests for the dense trainer state:
//! `restore(save(state)) == state` across model variants, seeds, and
//! training lengths, plus rejection of truncated payloads.

use picasso_data::BatchGenerator;
use picasso_train::{auc_datasets, CtrModel, Variant};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    // Each case trains a real model for a few steps; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dense parameters and optimizer accumulators survive a
    /// save/restore cycle bit for bit, for every model variant.
    #[test]
    fn dense_state_round_trips_bit_for_bit(
        steps in 1usize..6,
        seed in 0u64..1000,
        variant_ix in 0usize..4,
    ) {
        let variant = [Variant::Deep, Variant::DotDeep, Variant::Attention, Variant::Evolution]
            [variant_ix];
        // Attention variants pool over behaviour sequences; give them the
        // sequence-shaped dataset.
        let data = match variant {
            Variant::Deep | Variant::DotDeep => auc_datasets::criteo_like(),
            Variant::Attention | Variant::Evolution => auc_datasets::alibaba_like(),
        };
        let mut gen = BatchGenerator::new(Arc::clone(&data), seed);
        let mut model = CtrModel::new(&data, variant, 0.05, seed);
        for _ in 0..steps {
            let batch = gen.next_batch(8);
            let (_, grads) = model.step(&batch, &data);
            model.apply(&grads);
        }

        let bytes = model.dense_snapshot();
        // A differently-seeded model of the same shape adopts the state
        // wholesale: re-encoding reproduces the exact payload.
        let mut fresh = CtrModel::new(&data, variant, 0.05, seed ^ 0x00dd);
        fresh.restore_dense(&bytes).unwrap();
        prop_assert_eq!(fresh.dense_snapshot(), bytes.clone());

        // Truncation anywhere is rejected, and a failed restore must not
        // have clobbered the previously adopted state (all-or-nothing).
        let cut = bytes.len() / 2;
        prop_assert!(fresh.restore_dense(&bytes[..cut]).is_err());
        prop_assert_eq!(fresh.dense_snapshot(), bytes);
    }
}
