//! Logical operator kinds and their lowering characteristics.
//!
//! Every logical stage of a WDL graph (a `Unique`, a `Shuffle`, a matmul…)
//! corresponds, in a real TensorFlow graph, to a small constellation of
//! framework operations (casts, reshapes, control edges, hash-table lookups).
//! We capture that with a per-kind *micro-op multiplicity*: a stage lowers to
//! one simulator task that pays `micro_ops` launch overheads. Table V's
//! operation counts are sums of these multiplicities.

use picasso_sim::TaskCategory;
use serde::{Deserialize, Serialize};

/// The dominant hardware class of an operator (Fig. 4's projection).
///
/// Kernel-packing only fuses kernels within one class; interleaving aims to
/// overlap work across classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Bound by data ingestion (network from remote storage).
    Io,
    /// Bound by host memory bandwidth (hashmap/DRAM traffic).
    HostMemory,
    /// Bound by device memory bandwidth (HBM traffic).
    DeviceMemory,
    /// Bound by the host-device interconnect (PCIe).
    IntraComm,
    /// Bound by the inter-node network (or NVLink within a node).
    InterComm,
    /// Bound by GPU SM arithmetic throughput.
    Compute,
    /// Bound by host CPU.
    HostCompute,
}

impl OpClass {
    /// The breakdown category tasks of this class are attributed to.
    pub fn category(self) -> TaskCategory {
        match self {
            OpClass::Io => TaskCategory::DataIo,
            OpClass::HostMemory | OpClass::DeviceMemory | OpClass::IntraComm => {
                TaskCategory::Memory
            }
            OpClass::InterComm => TaskCategory::Communication,
            OpClass::Compute | OpClass::HostCompute => TaskCategory::Computation,
        }
    }
}

/// Logical operator kinds appearing in WDL training graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Stream and decode a batch of training data.
    DataLoad,
    /// Per-table feature preprocessing (hashing, bucketizing, ragged
    /// assembly).
    Preprocess,
    /// Deduplicate categorical IDs.
    Unique,
    /// Split IDs into local/remote partitions.
    Partition,
    /// Fused Unique + Partition (K-packing, Fig. 7).
    UniquePartition,
    /// Query embedding rows from the local table partition.
    Gather,
    /// Exchange remote rows between executors.
    Shuffle,
    /// Concatenate local and remote rows.
    Stitch,
    /// Fused Shuffle + Stitch (K-packing, Fig. 7).
    ShuffleStitch,
    /// Pool per-position rows by segment.
    SegmentReduce,
    /// Host-to-device copy of embedding activations.
    HostToDevice,
    /// Dense feature-interaction arithmetic (module-specific).
    InteractionCompute,
    /// MLP forward/backward matmuls.
    MlpCompute,
    /// Gradient AllReduce of dense parameters.
    AllReduce,
    /// AllToAllv exchange of embedding activations/gradients.
    AllToAll,
    /// Parameter-server pull of parameters.
    PsPull,
    /// Parameter-server push of gradients.
    PsPush,
    /// Sparse gradient scatter back into embedding tables.
    EmbeddingScatter,
    /// Optimizer application to dense parameters.
    OptimizerApply,
    /// Control/synchronization barrier.
    Sync,
}

impl OpKind {
    /// The dominant hardware class of this operator.
    pub fn class(self) -> OpClass {
        match self {
            OpKind::DataLoad => OpClass::Io,
            OpKind::Preprocess => OpClass::HostCompute,
            OpKind::Unique | OpKind::Partition | OpKind::UniquePartition => OpClass::HostMemory,
            OpKind::Gather | OpKind::EmbeddingScatter => OpClass::HostMemory,
            OpKind::Shuffle | OpKind::ShuffleStitch | OpKind::AllToAll => OpClass::InterComm,
            OpKind::Stitch => OpClass::DeviceMemory,
            OpKind::SegmentReduce => OpClass::DeviceMemory,
            OpKind::HostToDevice => OpClass::IntraComm,
            OpKind::InteractionCompute | OpKind::MlpCompute | OpKind::OptimizerApply => {
                OpClass::Compute
            }
            OpKind::AllReduce | OpKind::PsPull | OpKind::PsPush => OpClass::InterComm,
            OpKind::Sync => OpClass::HostCompute,
        }
    }

    /// TensorFlow-level graph operations this logical stage expands to (the
    /// Table V accounting unit). Fused kinds cost less than the sum of their
    /// parts — that is K-packing's launch-overhead saving.
    pub fn micro_ops(self) -> u32 {
        match self {
            OpKind::DataLoad => 12,
            OpKind::Preprocess => 58,
            OpKind::Unique => 8,
            OpKind::Partition => 7,
            OpKind::UniquePartition => 9,
            OpKind::Gather => 11,
            OpKind::Shuffle => 13,
            OpKind::Stitch => 6,
            OpKind::ShuffleStitch => 14,
            OpKind::SegmentReduce => 8,
            OpKind::HostToDevice => 3,
            OpKind::InteractionCompute => 1, // modules carry their own count
            OpKind::MlpCompute => 12,
            OpKind::AllReduce => 5,
            OpKind::AllToAll => 7,
            OpKind::PsPull => 8,
            OpKind::PsPush => 8,
            OpKind::EmbeddingScatter => 9,
            OpKind::OptimizerApply => 6,
            OpKind::Sync => 1,
        }
    }

    /// Ratio of backward-pass graph operations to forward ones. The backward
    /// pass mirrors the forward (§II-D) with extra gradient bookkeeping.
    pub const BACKWARD_OP_FACTOR: f64 = 1.8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_kinds_are_cheaper_than_parts() {
        assert!(
            OpKind::UniquePartition.micro_ops()
                < OpKind::Unique.micro_ops() + OpKind::Partition.micro_ops()
        );
        assert!(
            OpKind::ShuffleStitch.micro_ops()
                < OpKind::Shuffle.micro_ops() + OpKind::Stitch.micro_ops()
        );
    }

    #[test]
    fn classes_map_to_sensible_categories() {
        assert_eq!(
            OpKind::Shuffle.class().category(),
            TaskCategory::Communication
        );
        assert_eq!(OpKind::Gather.class().category(), TaskCategory::Memory);
        assert_eq!(
            OpKind::MlpCompute.class().category(),
            TaskCategory::Computation
        );
        assert_eq!(OpKind::DataLoad.class().category(), TaskCategory::DataIo);
        assert_eq!(OpKind::HostToDevice.class(), OpClass::IntraComm);
    }

    #[test]
    fn every_kind_has_positive_micro_ops() {
        let kinds = [
            OpKind::DataLoad,
            OpKind::Preprocess,
            OpKind::Unique,
            OpKind::Partition,
            OpKind::UniquePartition,
            OpKind::Gather,
            OpKind::Shuffle,
            OpKind::Stitch,
            OpKind::ShuffleStitch,
            OpKind::SegmentReduce,
            OpKind::HostToDevice,
            OpKind::InteractionCompute,
            OpKind::MlpCompute,
            OpKind::AllReduce,
            OpKind::AllToAll,
            OpKind::PsPull,
            OpKind::PsPush,
            OpKind::EmbeddingScatter,
            OpKind::OptimizerApply,
            OpKind::Sync,
        ];
        for k in kinds {
            assert!(k.micro_ops() >= 1, "{k:?}");
        }
    }
}
