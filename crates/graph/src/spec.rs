//! The logical WDL training graph.
//!
//! A [`WdlSpec`] is the structured description of one model's per-iteration
//! work, normalized *per training instance* so the execution engine can
//! scale it to any batch size: embedding lookup chains (one per embedding
//! table in the unoptimized graph; one per pack after D-packing), feature
//! interaction modules, and the MLP. The PICASSO passes transform this
//! structure; the execution engine lowers it onto the simulator.

use crate::ops::OpKind;
use serde::{Deserialize, Serialize};

/// The architectural layer an operation belongs to (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Data transmission layer.
    Io,
    /// Embedding layer.
    Embedding,
    /// Feature interaction layer.
    Interaction,
    /// Final multi-layer perceptron.
    Mlp,
}

/// One embedding lookup pipeline: Preprocess → Unique → Partition → Gather →
/// Shuffle → Stitch → SegmentReduce → H2D. In the baseline graph there is
/// one chain per embedding table; D-packing merges chains that share an
/// embedding dimension.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingChain {
    /// Dataset field indices feeding this chain.
    pub fields: Vec<u32>,
    /// Embedding tables queried (baseline: exactly one).
    pub tables: Vec<usize>,
    /// Embedding dimension (identical across the chain's tables).
    pub dim: usize,
    /// Average categorical IDs per training instance across all fields.
    pub ids_per_instance: f64,
    /// Rows remaining per instance after segment pooling (one per field).
    pub pooled_rows_per_instance: f64,
    /// Expected fraction of IDs remaining after `Unique` (measured from real
    /// batches during warm-up; 1.0 = no duplicates).
    pub unique_ratio: f64,
    /// K-packing: `Unique` and `Partition` fused into one kernel.
    pub fused_unique_partition: bool,
    /// K-packing: `Shuffle` and `Stitch` fused into one kernel.
    pub fused_shuffle_stitch: bool,
    /// K-interleaving group this chain executes in (0-based).
    pub group: u32,
    /// Fraction of `Gather` traffic served from Hot-storage (HybridHash);
    /// 0.0 means no cache.
    pub cache_hit_ratio: f64,
    /// Excluded from K-interleaving control dependencies (the paper's
    /// *preset excluded embedding* whose output feeds no concatenation).
    pub interleave_excluded: bool,
}

impl EmbeddingChain {
    /// A baseline chain for one table.
    pub fn for_table(table: usize, dim: usize, fields: Vec<u32>, ids_per_instance: f64) -> Self {
        assert!(dim > 0 && ids_per_instance > 0.0);
        EmbeddingChain {
            pooled_rows_per_instance: fields.len() as f64,
            fields,
            tables: vec![table],
            dim,
            ids_per_instance,
            unique_ratio: 1.0,
            fused_unique_partition: false,
            fused_shuffle_stitch: false,
            group: 0,
            cache_hit_ratio: 0.0,
            interleave_excluded: false,
        }
    }

    /// Embedding bytes this chain produces per instance.
    pub fn embedding_bytes_per_instance(&self) -> f64 {
        self.ids_per_instance * self.dim as f64 * 4.0
    }

    /// Pooled output bytes per instance (what the interaction layer sees).
    pub fn output_bytes_per_instance(&self) -> f64 {
        self.pooled_rows_per_instance * self.dim as f64 * 4.0
    }

    /// The logical stages this chain lowers to, in dependency order.
    pub fn stages(&self) -> Vec<OpKind> {
        let mut v = Vec::with_capacity(8);
        v.push(OpKind::Preprocess);
        if self.fused_unique_partition {
            v.push(OpKind::UniquePartition);
        } else {
            v.push(OpKind::Unique);
            v.push(OpKind::Partition);
        }
        v.push(OpKind::Gather);
        if self.fused_shuffle_stitch {
            v.push(OpKind::ShuffleStitch);
        } else {
            v.push(OpKind::Shuffle);
            v.push(OpKind::Stitch);
        }
        v.push(OpKind::SegmentReduce);
        v.push(OpKind::HostToDevice);
        v
    }

    /// Forward micro-op count of this chain (Table V accounting): the chain
    /// stages apply once per chain regardless of how many tables were packed
    /// into it — that is D-packing's saving.
    pub fn micro_ops_forward(&self) -> u64 {
        self.stages().iter().map(|k| k.micro_ops() as u64).sum()
    }
}

/// Kinds of feature-interaction modules found in the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Plain linear/LR terms.
    Linear,
    /// Factorization-machine second-order interaction.
    Fm,
    /// DCN-style cross layers.
    Cross,
    /// xDeepFM compressed interaction network.
    Cin,
    /// DIN-style target attention.
    Attention,
    /// DIEN-style GRU interest evolution.
    Gru,
    /// Transformer block (DSIN session interest).
    Transformer,
    /// CAN feature co-action unit.
    CoAction,
    /// Mixture-of-experts expert tower (one module per expert).
    Expert,
    /// MMoE/STAR gating network.
    Gate,
    /// Graph-relational aggregation (ATBRG).
    GraphAgg,
    /// Plain DNN tower (TwoTower, deep part of W&D).
    DnnTower,
}

/// One feature-interaction module instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InteractionModule {
    /// Module kind.
    pub kind: ModuleKind,
    /// Dataset field indices whose embeddings this module consumes.
    pub input_fields: Vec<u32>,
    /// Dense FLOPs per instance (forward).
    pub flops_per_instance: f64,
    /// Activation bytes per instance (read+write, forward).
    pub bytes_per_instance: f64,
    /// Trainable dense parameters.
    pub params: f64,
    /// Output width (concatenated into the MLP input).
    pub output_width: usize,
    /// Forward micro-ops of this module's kernel constellation.
    pub micro_ops_forward: u32,
}

/// The final MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Hidden-layer widths, ending in the output width.
    pub widths: Vec<usize>,
    /// Dense FLOPs per instance (forward).
    pub flops_per_instance: f64,
    /// Activation bytes per instance (forward).
    pub bytes_per_instance: f64,
    /// Trainable dense parameters.
    pub params: f64,
}

impl MlpSpec {
    /// An MLP with the given input width and hidden widths; FLOPs and
    /// parameters derived from the matmul shapes.
    pub fn new(input_width: usize, widths: Vec<usize>) -> Self {
        assert!(!widths.is_empty(), "MLP needs at least one layer");
        let mut flops = 0.0;
        let mut params = 0.0;
        let mut bytes = input_width as f64 * 4.0;
        let mut prev = input_width;
        for &w in &widths {
            flops += 2.0 * prev as f64 * w as f64;
            params += prev as f64 * w as f64 + w as f64;
            bytes += w as f64 * 8.0; // activations read+written
            prev = w;
        }
        MlpSpec {
            widths,
            flops_per_instance: flops,
            bytes_per_instance: bytes,
            params,
        }
    }

    /// Number of matmul layers.
    pub fn depth(&self) -> usize {
        self.widths.len()
    }
}

/// The full logical training graph of one WDL model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WdlSpec {
    /// Model name (e.g. `"CAN"`).
    pub name: String,
    /// Raw training bytes streamed per instance (data transmission layer).
    pub io_bytes_per_instance: f64,
    /// Embedding lookup chains.
    pub chains: Vec<EmbeddingChain>,
    /// Feature-interaction modules.
    pub modules: Vec<InteractionModule>,
    /// Final MLP.
    pub mlp: MlpSpec,
    /// D-interleaving micro-batch count (1 = off).
    pub micro_batches: usize,
    /// Layer from which D-interleaving applies (Fig. 8a vs 8b).
    pub interleave_from: Layer,
    /// Extra control-dependency edges `(from, to)` between K-interleaving
    /// groups, on top of the implicit `g -> g+1` stagger chain (Fig. 8c).
    /// Group `to`'s communication gate additionally waits on group
    /// `from`'s. Only forward edges (`from < to`) are schedulable; the
    /// lint layer rejects self/backward edges (which would close a cycle
    /// with the implicit chain) before the scheduler ever sees them.
    pub group_deps: Vec<(u32, u32)>,
}

impl WdlSpec {
    /// Dense (non-embedding) parameter count: replicated under DP and
    /// aggregated by AllReduce.
    pub fn dense_params(&self) -> f64 {
        self.modules.iter().map(|m| m.params).sum::<f64>() + self.mlp.params
    }

    /// Total embedding activation bytes per instance entering interaction.
    pub fn embedding_output_bytes_per_instance(&self) -> f64 {
        self.chains
            .iter()
            .map(|c| c.output_bytes_per_instance())
            .sum()
    }

    /// Total embedding bytes per instance moved by the embedding layer.
    pub fn embedding_bytes_per_instance(&self) -> f64 {
        self.chains
            .iter()
            .map(|c| c.embedding_bytes_per_instance())
            .sum()
    }

    /// Peak feature-map bytes per instance (the Eq. 2 `RInstance` for GPU
    /// device memory): embedding outputs + interaction activations + MLP
    /// activations, forward + retained for backward.
    pub fn feature_map_bytes_per_instance(&self) -> f64 {
        let interaction: f64 = self.modules.iter().map(|m| m.bytes_per_instance).sum();
        2.0 * (self.embedding_output_bytes_per_instance()
            + interaction
            + self.mlp.bytes_per_instance)
    }

    /// Total dense FLOPs per instance (forward).
    pub fn dense_flops_per_instance(&self) -> f64 {
        self.modules
            .iter()
            .map(|m| m.flops_per_instance)
            .sum::<f64>()
            + self.mlp.flops_per_instance
    }

    /// Number of K-interleaving groups currently assigned.
    pub fn group_count(&self) -> usize {
        self.chains
            .iter()
            .filter(|c| !c.interleave_excluded)
            .map(|c| c.group)
            .max()
            .map(|g| g as usize + 1)
            .unwrap_or(0)
    }

    /// Validates internal consistency by running the spec-surface lint
    /// rules (see [`crate::lint::lint_spec`]) and keeping the
    /// error-severity findings. `Ok(())` means the spec is structurally
    /// sound; warnings (unused fields, out-of-range group deps) do not
    /// fail validation.
    pub fn validate(&self) -> Result<(), Vec<picasso_lint::Diagnostic>> {
        let errors: Vec<_> = crate::lint::lint_spec(self, None)
            .into_iter()
            .filter(|d| d.severity == picasso_lint::Severity::Error)
            .collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(table: usize, dim: usize, fields: Vec<u32>) -> EmbeddingChain {
        let n = fields.len() as f64;
        EmbeddingChain::for_table(table, dim, fields, n)
    }

    fn small_spec() -> WdlSpec {
        WdlSpec {
            name: "test".into(),
            io_bytes_per_instance: 100.0,
            chains: vec![chain(0, 8, vec![0, 1]), chain(1, 16, vec![2])],
            modules: vec![InteractionModule {
                kind: ModuleKind::DnnTower,
                input_fields: vec![0, 1, 2],
                flops_per_instance: 1000.0,
                bytes_per_instance: 64.0,
                params: 500.0,
                output_width: 16,
                micro_ops_forward: 20,
            }],
            mlp: MlpSpec::new(16, vec![64, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn mlp_flops_and_params_follow_shapes() {
        let m = MlpSpec::new(100, vec![50, 10]);
        assert_eq!(m.flops_per_instance, 2.0 * (100.0 * 50.0 + 50.0 * 10.0));
        assert_eq!(m.params, 100.0 * 50.0 + 50.0 + 50.0 * 10.0 + 10.0);
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn chain_stage_fusion_changes_stages() {
        let mut c = chain(0, 8, vec![0]);
        assert_eq!(c.stages().len(), 8);
        let unfused_ops = c.micro_ops_forward();
        c.fused_unique_partition = true;
        c.fused_shuffle_stitch = true;
        assert_eq!(c.stages().len(), 6);
        assert!(c.micro_ops_forward() < unfused_ops);
    }

    #[test]
    fn spec_aggregates_are_consistent() {
        let s = small_spec();
        assert_eq!(s.dense_params(), 500.0 + s.mlp.params);
        // chains: 2 fields*8 dims + 1 field*16 dims = (16+16)*4 bytes
        assert_eq!(
            s.embedding_output_bytes_per_instance(),
            (2.0 * 8.0 + 16.0) * 4.0
        );
        assert!(s.feature_map_bytes_per_instance() > s.embedding_output_bytes_per_instance());
        assert_eq!(s.group_count(), 1);
        s.validate().unwrap();
    }

    #[test]
    fn validate_catches_duplicate_fields() {
        let mut s = small_spec();
        s.chains[1].fields = vec![0];
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_unknown_module_inputs() {
        let mut s = small_spec();
        s.modules[0].input_fields.push(99);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_micro_batches() {
        let mut s = small_spec();
        s.micro_batches = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_empty_chain_fields() {
        let mut s = small_spec();
        s.chains[1].fields.clear();
        s.modules[0].input_fields = vec![0, 1];
        let errs = s.validate().unwrap_err();
        assert!(
            errs.iter().any(|d| d.rule == "spec.empty-chain"),
            "{errs:?}"
        );
    }

    #[test]
    fn validate_catches_module_with_no_inputs() {
        let mut s = small_spec();
        // Dense DnnTowers may take zero embedding inputs; an FM cannot.
        s.modules[0].kind = ModuleKind::Fm;
        s.modules[0].input_fields.clear();
        let errs = s.validate().unwrap_err();
        assert!(
            errs.iter().any(|d| d.rule == "spec.no-input-module"),
            "{errs:?}"
        );
    }

    #[test]
    fn validate_reports_every_violation_not_just_the_first() {
        let mut s = small_spec();
        s.chains[1].fields = vec![0]; // duplicate of chain 0's field
        s.micro_batches = 0;
        let errs = s.validate().unwrap_err();
        assert!(errs.iter().any(|d| d.rule == "spec.duplicate-field"));
        assert!(errs.iter().any(|d| d.rule == "spec.zero-micro-batches"));
    }
}
