//! Graph statistics: the Table V accounting.
//!
//! Counts the TensorFlow-level operations a [`WdlSpec`] lowers to, forward
//! and backward, so the effect of packing (and the supplementary control
//! operations interleaving adds) can be compared against the paper's
//! "# of operations" and "# of packed embedding" columns.

use crate::ops::OpKind;
use crate::spec::WdlSpec;

/// Operation counts of one lowered training graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Total graph operations (forward + backward + supplements).
    pub total_ops: u64,
    /// Forward-pass operations.
    pub forward_ops: u64,
    /// Operations in the embedding chains (forward).
    pub chain_ops: u64,
    /// Operations in interaction modules (forward).
    pub module_ops: u64,
    /// Operations in the MLP (forward).
    pub mlp_ops: u64,
    /// Control/synchronization operations added by interleaving.
    pub sync_ops: u64,
    /// Number of embedding chains ("# of packed embedding" in Table V; for
    /// the unoptimized graph this equals the table count).
    pub packed_embeddings: usize,
}

/// Computes the operation counts of `spec`.
pub fn graph_stats(spec: &WdlSpec) -> GraphStats {
    let chain_ops: u64 = spec.chains.iter().map(|c| c.micro_ops_forward()).sum();
    let module_ops: u64 = spec
        .modules
        .iter()
        .map(|m| m.micro_ops_forward as u64)
        .sum();
    let mlp_ops = spec.mlp.depth() as u64 * OpKind::MlpCompute.micro_ops() as u64;
    let io_ops = OpKind::DataLoad.micro_ops() as u64;
    let comm_ops = OpKind::AllReduce.micro_ops() as u64 + OpKind::OptimizerApply.micro_ops() as u64;
    let forward_ops = chain_ops + module_ops + mlp_ops + io_ops;

    // Interleaving supplements: per extra group and per extra micro-batch,
    // control dependencies and split/concat bookkeeping ("the interleaving
    // optimization supplements a certain amount of operations").
    let groups = spec.group_count().max(1) as u64;
    let micro = spec.micro_batches as u64;
    let sync_ops = (groups - 1) * 6 + (micro - 1) * 8;

    let backward = (forward_ops as f64 * OpKind::BACKWARD_OP_FACTOR) as u64;
    GraphStats {
        total_ops: forward_ops + backward + comm_ops + sync_ops,
        forward_ops,
        chain_ops,
        module_ops,
        mlp_ops,
        sync_ops,
        packed_embeddings: spec.chains.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{d_packing, k_packing};
    use crate::spec::{EmbeddingChain, Layer, MlpSpec, WdlSpec};
    use std::collections::BTreeMap;

    fn spec(tables: usize) -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: (0..tables)
                .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
                .collect(),
            modules: vec![],
            mlp: MlpSpec::new(8, vec![64, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn baseline_counts_scale_with_tables() {
        let s1 = graph_stats(&spec(10));
        let s2 = graph_stats(&spec(100));
        assert_eq!(s1.packed_embeddings, 10);
        assert_eq!(s2.packed_embeddings, 100);
        assert!(s2.chain_ops > 9 * s1.chain_ops);
        assert!(s2.total_ops > s1.total_ops);
    }

    #[test]
    fn packing_reduces_ops_dramatically() {
        let base = spec(100);
        // Pack all 100 tables into 5 packs of 20.
        let assign: BTreeMap<usize, usize> = (0..100).map(|t| (t, t / 20)).collect();
        let packed = k_packing::apply(&d_packing::apply(&base, &assign));
        let sb = graph_stats(&base);
        let sp = graph_stats(&packed);
        assert_eq!(sp.packed_embeddings, 5);
        let ratio = sp.total_ops as f64 / sb.total_ops as f64;
        assert!(
            ratio < 0.25,
            "packing should reduce total ops to a small fraction, got {ratio:.3}"
        );
    }

    #[test]
    fn interleaving_supplements_ops() {
        let mut s = spec(10);
        let before = graph_stats(&s).total_ops;
        for (i, c) in s.chains.iter_mut().enumerate() {
            c.group = (i % 5) as u32;
        }
        s.micro_batches = 3;
        let after = graph_stats(&s);
        assert!(after.total_ops > before);
        assert_eq!(after.sync_ops, 4 * 6 + 2 * 8);
    }

    #[test]
    fn forward_parts_add_up() {
        let s = graph_stats(&spec(7));
        assert_eq!(
            s.forward_ops,
            s.chain_ops + s.module_ops + s.mlp_ops + 12 /* DataLoad */
        );
        assert!(s.total_ops > 2 * s.forward_ops, "backward roughly doubles");
    }
}
