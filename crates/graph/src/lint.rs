//! Spec- and plan-surface rule traversals for `picasso-lint`.
//!
//! The diagnostics model, rule registry, and stage-graph rules live in the
//! foundation crate `picasso-lint`; this module implements the rules that
//! need to walk graph-crate data: [`lint_spec`] inspects a [`WdlSpec`]
//! before any pass runs, [`lint_plan`] inspects a planned pipeline (the
//! transformed spec, the shared [`PlanContext`], the configured pass list,
//! and the per-pass reports). [`crate::WdlSpec::validate`] is the
//! error-severity subset of [`lint_spec`]; `Pipeline::run` appends
//! [`lint_plan`]'s findings to its return value.

use std::collections::{BTreeMap, BTreeSet};

use picasso_lint::{Diagnostic, Severity, Span};

use crate::passes::pipeline::{eq3_auto_groups, PassId, PipelineConfig, PlanContext};
use crate::passes::report::PassReport;
use crate::spec::{ModuleKind, WdlSpec};

/// Runs every spec-surface rule on `spec`.
///
/// `table_dims` is an optional oracle mapping embedding table id to its
/// true embedding dim (from the dataset): a chain stores a single `dim`
/// for all its tables, so Eq. 1 dim homogeneity (`spec.dim-mismatch`) is
/// only checkable against an external source of per-table dims. Pass
/// `None` when no dataset is at hand; the other rules still run.
pub fn lint_spec(spec: &WdlSpec, table_dims: Option<&BTreeMap<usize, usize>>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // spec.duplicate-field: each feature field belongs to exactly one
    // chain (Eq. 1 assigns each field to one packed shard).
    let mut owner: BTreeMap<u32, usize> = BTreeMap::new();
    for (ci, chain) in spec.chains.iter().enumerate() {
        for &f in &chain.fields {
            if let Some(&first) = owner.get(&f) {
                out.push(
                    Diagnostic::new(
                        "spec.duplicate-field",
                        Severity::Error,
                        Span::Chain(ci),
                        format!("field {f} is already produced by chain {first}"),
                    )
                    .with_hint("assign each feature field to exactly one chain"),
                );
            } else {
                owner.insert(f, ci);
            }
        }
    }

    // spec.empty-chain (a chain producing nothing still lowers to stages
    // that gate its group) and spec.zero-cardinality.
    for (ci, chain) in spec.chains.iter().enumerate() {
        if chain.fields.is_empty() {
            out.push(
                Diagnostic::new(
                    "spec.empty-chain",
                    Severity::Error,
                    Span::Chain(ci),
                    "chain produces no feature fields",
                )
                .with_hint("give the chain at least one field or remove it"),
            );
        }
        let mut zero = Vec::new();
        if chain.tables.is_empty() {
            zero.push("no embedding tables");
        }
        if chain.dim == 0 {
            zero.push("embedding dim is 0");
        }
        if chain.ids_per_instance <= 0.0 {
            zero.push("ids per instance is not positive");
        }
        if !zero.is_empty() {
            out.push(
                Diagnostic::new(
                    "spec.zero-cardinality",
                    Severity::Error,
                    Span::Chain(ci),
                    format!("chain has zero lookup volume: {}", zero.join(", ")),
                )
                .with_hint("chains must name tables with a positive dim and lookup rate"),
            );
        }
        // spec.dim-mismatch: Eq. 1 packs only dim-homogeneous tables.
        if let Some(dims) = table_dims {
            let bad: Vec<String> = chain
                .tables
                .iter()
                .filter_map(|t| {
                    dims.get(t)
                        .filter(|&&d| d != chain.dim)
                        .map(|d| format!("table {t} has dim {d}"))
                })
                .collect();
            if !bad.is_empty() {
                out.push(
                    Diagnostic::new(
                        "spec.dim-mismatch",
                        Severity::Error,
                        Span::Chain(ci),
                        format!(
                            "chain dim is {} but {} (Eq. 1 packs only dim-homogeneous tables)",
                            chain.dim,
                            bad.join(", "),
                        ),
                    )
                    .with_hint("pack tables with equal dims, or split the chain"),
                );
            }
        }
    }

    // spec.dangling-input / spec.no-input-module.
    let produced: BTreeSet<u32> = spec.chains.iter().flat_map(|c| c.fields.clone()).collect();
    let mut consumed: BTreeSet<u32> = BTreeSet::new();
    for (mi, module) in spec.modules.iter().enumerate() {
        // A DnnTower with no embedding inputs is a dense tower over the
        // numeric features (DLRM's bottom MLP); every other module kind
        // exists to combine embedding outputs and needs at least one.
        if module.input_fields.is_empty() && module.kind != ModuleKind::DnnTower {
            out.push(
                Diagnostic::new(
                    "spec.no-input-module",
                    Severity::Error,
                    Span::Module(mi),
                    format!("module {:?} consumes zero fields", module.kind),
                )
                .with_hint(
                    "interaction modules must combine at least one embedding output \
                     (only dense DnnTowers may take zero)",
                ),
            );
        }
        for &f in &module.input_fields {
            consumed.insert(f);
            if !produced.contains(&f) {
                out.push(
                    Diagnostic::new(
                        "spec.dangling-input",
                        Severity::Error,
                        Span::Module(mi),
                        format!(
                            "module {:?} consumes field {f} not produced by any chain",
                            module.kind
                        ),
                    )
                    .with_hint("produce the field in a chain or drop it from the module"),
                );
            }
        }
    }

    // spec.unused-field: dead embedding output wastes Gather/Shuffle
    // volume. Only meaningful when modules exist (with none, the MLP
    // consumes every chain directly).
    if !spec.modules.is_empty() {
        for (ci, chain) in spec.chains.iter().enumerate() {
            let unused: Vec<String> = chain
                .fields
                .iter()
                .filter(|f| !consumed.contains(f))
                .map(|f| f.to_string())
                .collect();
            if !unused.is_empty() {
                out.push(
                    Diagnostic::new(
                        "spec.unused-field",
                        Severity::Warn,
                        Span::Chain(ci),
                        format!("field(s) {} are consumed by no module", unused.join(", ")),
                    )
                    .with_hint("drop dead fields to cut embedding-layer volume"),
                );
            }
        }
    }

    // spec.zero-micro-batches (Eq. 2 needs at least one split).
    if spec.micro_batches == 0 {
        out.push(
            Diagnostic::new(
                "spec.zero-micro-batches",
                Severity::Error,
                Span::Spec,
                "micro_batches is 0; D-interleaving needs at least one micro-batch",
            )
            .with_hint("set micro_batches to 1 to disable D-interleaving"),
        );
    }

    // spec.group-dep-range: declared group dependencies must point at
    // populated groups to have any effect.
    let domain = spec.group_count() as u32;
    for &(from, to) in &spec.group_deps {
        if from >= domain || to >= domain {
            out.push(
                Diagnostic::new(
                    "spec.group-dep-range",
                    Severity::Warn,
                    Span::Spec,
                    format!(
                        "group dependency ({from} -> {to}) references a group outside \
                         the populated range 0..{domain} and has no effect",
                    ),
                )
                .with_hint("declare dependencies between assigned group ids only"),
            );
        }
    }

    out
}

/// Runs every plan-surface rule on a planned pipeline: `spec` is the
/// transformed graph after all passes, `ctx` the shared planning context
/// (with its `derived` plan filled in), `config` the configured pass list,
/// and `reports` the per-pass op accounting.
pub fn lint_plan(
    spec: &WdlSpec,
    ctx: &PlanContext,
    config: &PipelineConfig,
    reports: &[PassReport],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // plan.pass-duplicate: the passes are idempotent rewrites; running
    // one twice double-applies its equation.
    let mut seen: Vec<PassId> = Vec::new();
    for &id in &config.passes {
        if seen.contains(&id) {
            out.push(
                Diagnostic::new(
                    "plan.pass-duplicate",
                    Severity::Error,
                    Span::Pass(id.name().to_string()),
                    format!("pass {} is listed more than once", id.name()),
                )
                .with_hint("list each pass at most once"),
            );
        } else {
            seen.push(id);
        }
    }

    // plan.pass-order: interleaving groups are formed over the packed
    // graph (§III-C), so packing must come first.
    let mut interleaving_seen: Option<PassId> = None;
    for &id in &config.passes {
        if id.is_interleaving() {
            interleaving_seen.get_or_insert(id);
        } else if id.is_packing() {
            if let Some(inter) = interleaving_seen {
                out.push(
                    Diagnostic::new(
                        "plan.pass-order",
                        Severity::Error,
                        Span::Pass(id.name().to_string()),
                        format!(
                            "packing pass {} runs after interleaving pass {}",
                            id.name(),
                            inter.name(),
                        ),
                    )
                    .with_hint("order packing passes before interleaving passes"),
                );
            }
        }
    }

    // plan.micro-split / plan.micro-uneven: Eq. 2 splits the base batch
    // into micro-batches.
    let base = ctx.derived.base_batch;
    let micro = ctx.derived.micro_batches;
    if base > 0 && micro > 1 {
        if micro > base {
            out.push(
                Diagnostic::new(
                    "plan.micro-split",
                    Severity::Error,
                    Span::Pass(PassId::DInterleaving.name().to_string()),
                    format!("{micro} micro-batches cannot split a base batch of {base} instances"),
                )
                .with_hint("derive fewer micro-batches or raise the batch"),
            );
        } else if !base.is_multiple_of(micro) {
            out.push(
                Diagnostic::new(
                    "plan.micro-uneven",
                    Severity::Info,
                    Span::Pass(PassId::DInterleaving.name().to_string()),
                    format!(
                        "base batch {base} does not divide into {micro} micro-batches; \
                         the last split carries the remainder",
                    ),
                )
                .with_hint("a divisible batch keeps Eq. 2 splits uniform"),
            );
        }
    }

    // plan.group-capacity: an explicit group override below the Eq. 3
    // capacity-respecting count overfills each group's window.
    if config.enables(PassId::KInterleaving) && base > 0 && ctx.derived.groups > 0 {
        let needed = eq3_auto_groups(spec, ctx, base);
        if ctx.derived.groups < needed {
            out.push(
                Diagnostic::new(
                    "plan.group-capacity",
                    Severity::Warn,
                    Span::Pass(PassId::KInterleaving.name().to_string()),
                    format!(
                        "{} group(s) leave per-group volume above the Eq. 3 capacity \
                         ({needed} needed for this machine's NIC/PCIe window)",
                        ctx.derived.groups,
                    ),
                )
                .with_hint("raise the group count or widen the pipeline window"),
            );
        }
    }

    // plan.excluded-unknown: preset-excluded tables must exist to take
    // effect.
    let covered: BTreeSet<usize> = spec.chains.iter().flat_map(|c| c.tables.clone()).collect();
    let unknown: Vec<String> = ctx
        .excluded_tables
        .iter()
        .filter(|t| !covered.contains(t))
        .map(|t| t.to_string())
        .collect();
    if !unknown.is_empty() {
        out.push(
            Diagnostic::new(
                "plan.excluded-unknown",
                Severity::Warn,
                Span::Pass(PassId::KInterleaving.name().to_string()),
                format!(
                    "excluded table(s) {} are covered by no chain",
                    unknown.join(", ")
                ),
            )
            .with_hint("exclude only table ids the model actually embeds"),
        );
    }

    // plan.noop-pass: an enabled pass that planned a no-op usually hides
    // a configuration mistake (downgraded to a warning by design).
    let noop = |id: PassId| -> Option<String> {
        let report = reports.iter().find(|r| r.pass == id.name());
        match id {
            PassId::DPacking => {
                if ctx.table_to_pack.is_empty() {
                    Some("no Eq. 1 table-to-pack mapping was planned".to_string())
                } else if report.is_some_and(|r| r.chains_before == r.chains_after) {
                    Some("the planned mapping merged no chains".to_string())
                } else {
                    None
                }
            }
            PassId::KPacking => report
                .filter(|r| r.ops_before == r.ops_after)
                .map(|_| "no kernels were fused".to_string()),
            PassId::KInterleaving => {
                (ctx.derived.groups <= 1).then(|| "planned a single group".to_string())
            }
            PassId::DInterleaving => {
                (ctx.derived.micro_batches <= 1).then(|| "planned a single micro-batch".to_string())
            }
            PassId::Caching => {
                (ctx.hot_bytes == 0).then(|| "Hot-storage budget is zero bytes".to_string())
            }
        }
    };
    for &id in &config.passes {
        if let Some(why) = noop(id) {
            out.push(
                Diagnostic::new(
                    "plan.noop-pass",
                    Severity::Warn,
                    Span::Pass(id.name().to_string()),
                    format!("pass {} is enabled but planned a no-op: {why}", id.name()),
                )
                .with_hint("disable the pass or fix the plan inputs"),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind};
    use picasso_sim::MachineSpec;

    fn module(fields: Vec<u32>) -> InteractionModule {
        InteractionModule {
            kind: ModuleKind::DnnTower,
            input_fields: fields,
            flops_per_instance: 1000.0,
            bytes_per_instance: 64.0,
            params: 500.0,
            output_width: 16,
            micro_ops_forward: 20,
        }
    }

    fn spec(n_chains: usize) -> WdlSpec {
        let chains: Vec<EmbeddingChain> = (0..n_chains)
            .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
            .collect();
        let fields: Vec<u32> = (0..n_chains as u32).collect();
        WdlSpec {
            name: "lint-test".into(),
            io_bytes_per_instance: 100.0,
            chains,
            modules: vec![module(fields)],
            mlp: MlpSpec::new(16, vec![64, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    fn ctx() -> PlanContext {
        PlanContext::new(MachineSpec::eflops())
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn well_formed_spec_lints_clean() {
        assert_eq!(lint_spec(&spec(4), None), Vec::new());
    }

    #[test]
    fn duplicate_field_triggers_with_both_chains_named() {
        let mut s = spec(3);
        s.chains[2].fields = vec![0];
        s.modules[0].input_fields = vec![0, 1];
        let diags = lint_spec(&s, None);
        assert!(rules(&diags).contains(&"spec.duplicate-field"), "{diags:?}");
        let d = diags
            .iter()
            .find(|d| d.rule == "spec.duplicate-field")
            .unwrap();
        assert_eq!(d.span, Span::Chain(2));
        assert!(d.message.contains("chain 0"));
    }

    #[test]
    fn dangling_input_triggers_on_unknown_field() {
        let mut s = spec(2);
        s.modules[0].input_fields.push(42);
        let diags = lint_spec(&s, None);
        assert!(rules(&diags).contains(&"spec.dangling-input"), "{diags:?}");
    }

    #[test]
    fn empty_chain_and_no_input_module_trigger() {
        let mut s = spec(2);
        s.chains[0].fields.clear();
        // An Attention module exists to combine embeddings; zero inputs is
        // an error for it (unlike a dense DnnTower, tested below).
        s.modules[0].kind = ModuleKind::Attention;
        s.modules[0].input_fields.clear();
        let diags = lint_spec(&s, None);
        assert!(rules(&diags).contains(&"spec.empty-chain"));
        assert!(rules(&diags).contains(&"spec.no-input-module"));
    }

    #[test]
    fn dense_dnn_tower_may_take_zero_embedding_inputs() {
        // DLRM's bottom MLP: a DnnTower over the numeric features only.
        let mut s = spec(2);
        s.modules[0].input_fields.clear();
        let diags = lint_spec(&s, None);
        assert!(
            !rules(&diags).contains(&"spec.no-input-module"),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_cardinality_triggers_on_each_degenerate_axis() {
        let mut s = spec(3);
        s.chains[0].tables.clear();
        s.chains[1].dim = 0;
        s.chains[2].ids_per_instance = 0.0;
        let diags = lint_spec(&s, None);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "spec.zero-cardinality")
            .collect();
        assert_eq!(hits.len(), 3, "{diags:?}");
    }

    #[test]
    fn dim_mismatch_needs_the_oracle_and_triggers_with_it() {
        let s = spec(2);
        assert!(lint_spec(&s, None).is_empty());
        // Table 1 truly has dim 16, but its chain claims 8.
        let dims: BTreeMap<usize, usize> = [(0, 8), (1, 16)].into_iter().collect();
        let diags = lint_spec(&s, Some(&dims));
        let d = diags
            .iter()
            .find(|d| d.rule == "spec.dim-mismatch")
            .expect("mismatch");
        assert_eq!(d.span, Span::Chain(1));
        assert_eq!(d.severity, Severity::Error);
        // A matching oracle stays clean.
        let ok: BTreeMap<usize, usize> = [(0, 8), (1, 8)].into_iter().collect();
        assert!(lint_spec(&s, Some(&ok)).is_empty());
    }

    #[test]
    fn unused_field_warns_only_when_modules_exist() {
        let mut s = spec(3);
        s.modules[0].input_fields = vec![0, 1]; // field 2 now dead
        let diags = lint_spec(&s, None);
        let d = diags
            .iter()
            .find(|d| d.rule == "spec.unused-field")
            .expect("unused");
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.span, Span::Chain(2));
        // With no modules at all the MLP consumes chains directly.
        s.modules.clear();
        assert!(lint_spec(&s, None).is_empty());
    }

    #[test]
    fn zero_micro_batches_triggers() {
        let mut s = spec(2);
        s.micro_batches = 0;
        assert!(rules(&lint_spec(&s, None)).contains(&"spec.zero-micro-batches"));
    }

    #[test]
    fn group_dep_range_warns_on_unpopulated_groups() {
        let mut s = spec(4);
        for (i, c) in s.chains.iter_mut().enumerate() {
            c.group = (i as u32) % 2; // groups 0 and 1 populated
        }
        s.group_deps = vec![(0, 1), (1, 5)];
        let diags = lint_spec(&s, None);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "spec.group-dep-range")
            .collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("(1 -> 5)"));
        s.group_deps = vec![(0, 1)];
        assert!(lint_spec(&s, None).is_empty());
    }

    #[test]
    fn duplicate_and_misordered_passes_are_plan_errors() {
        let s = spec(2);
        let c = ctx();
        let cfg = PipelineConfig::new(vec![
            PassId::KInterleaving,
            PassId::DPacking,
            PassId::KInterleaving,
        ]);
        let diags = lint_plan(&s, &c, &cfg, &[]);
        assert!(rules(&diags).contains(&"plan.pass-duplicate"), "{diags:?}");
        assert!(rules(&diags).contains(&"plan.pass-order"), "{diags:?}");
        // The canonical order is clean on both rules.
        let diags = lint_plan(&s, &c, &PipelineConfig::all(), &[]);
        assert!(!rules(&diags).contains(&"plan.pass-duplicate"));
        assert!(!rules(&diags).contains(&"plan.pass-order"));
    }

    #[test]
    fn micro_split_errors_when_splits_exceed_instances() {
        let s = spec(2);
        let mut c = ctx();
        c.derived.base_batch = 4;
        c.derived.micro_batches = 8;
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        assert!(rules(&diags).contains(&"plan.micro-split"), "{diags:?}");
        c.derived.micro_batches = 2;
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        assert!(!rules(&diags).contains(&"plan.micro-split"));
    }

    #[test]
    fn uneven_micro_split_is_informational() {
        let s = spec(2);
        let mut c = ctx();
        c.derived.base_batch = 1000;
        c.derived.micro_batches = 3;
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        let d = diags
            .iter()
            .find(|d| d.rule == "plan.micro-uneven")
            .expect("uneven");
        assert_eq!(d.severity, Severity::Info);
        c.derived.base_batch = 999;
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        assert!(!rules(&diags).contains(&"plan.micro-uneven"));
    }

    #[test]
    fn group_capacity_warns_on_starved_override_only() {
        // Huge per-chain volume so Eq. 3 wants many groups.
        let mut s = spec(8);
        for c in s.chains.iter_mut() {
            c.ids_per_instance = 1e7;
        }
        let mut c = ctx();
        c.derived.base_batch = 1024;
        c.derived.groups = 1; // starved override
        let cfg = PipelineConfig::new(vec![PassId::KInterleaving]);
        let diags = lint_plan(&s, &c, &cfg, &[]);
        assert!(rules(&diags).contains(&"plan.group-capacity"), "{diags:?}");
        // The capacity-respecting count itself is clean.
        c.derived.groups = eq3_auto_groups(&s, &c, 1024);
        let diags = lint_plan(&s, &c, &cfg, &[]);
        assert!(!rules(&diags).contains(&"plan.group-capacity"), "{diags:?}");
        // And the rule only applies when K-Interleaving is enabled.
        c.derived.groups = 1;
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        assert!(!rules(&diags).contains(&"plan.group-capacity"));
    }

    #[test]
    fn unknown_excluded_tables_warn() {
        let s = spec(3);
        let mut c = ctx();
        c.excluded_tables = vec![1, 99];
        let diags = lint_plan(&s, &c, &PipelineConfig::none(), &[]);
        let d = diags
            .iter()
            .find(|d| d.rule == "plan.excluded-unknown")
            .expect("unknown");
        assert!(d.message.contains("99"));
        assert!(!d.message.contains('1'), "{}", d.message);
        c.excluded_tables = vec![1];
        assert!(lint_plan(&s, &c, &PipelineConfig::none(), &[]).is_empty());
    }

    #[test]
    fn noop_passes_warn_per_cause() {
        let s = spec(2);
        let mut c = ctx();
        c.derived.groups = 1;
        c.derived.micro_batches = 1;
        c.hot_bytes = 0;
        // table_to_pack left empty: D-Packing planned nothing.
        let cfg = PipelineConfig::all();
        let diags = lint_plan(&s, &c, &cfg, &[]);
        let noops: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "plan.noop-pass")
            .collect();
        assert_eq!(noops.len(), 4, "{diags:?}"); // all but k_packing (needs a report)
        assert!(noops.iter().all(|d| d.severity == Severity::Warn));
        // A live plan is clean.
        c.table_to_pack = [(0, 0), (1, 0)].into_iter().collect();
        c.derived.groups = 2;
        c.derived.micro_batches = 2;
        c.hot_bytes = 1 << 20;
        let report = |pass: &str, before: u64, after: u64| PassReport {
            pass: pass.into(),
            ops_before: before,
            ops_after: after,
            chains_before: 2,
            chains_after: 1,
            duration_ns: 0,
        };
        let reports = vec![report("d_packing", 16, 8), report("k_packing", 8, 6)];
        let diags = lint_plan(&s, &c, &cfg, &reports);
        assert!(!rules(&diags).contains(&"plan.noop-pass"), "{diags:?}");
        // A k_packing report that fused nothing triggers its arm.
        let reports = vec![report("d_packing", 16, 8), report("k_packing", 8, 8)];
        let diags = lint_plan(&s, &c, &cfg, &reports);
        assert!(rules(&diags).contains(&"plan.noop-pass"));
    }

    #[test]
    fn every_emitted_rule_id_is_registered() {
        // Force a pile of diagnostics and check each id against the
        // registry, so docs and emissions cannot drift apart.
        let mut s = spec(3);
        s.chains[0].fields.clear();
        s.chains[1].dim = 0;
        s.micro_batches = 0;
        s.group_deps = vec![(0, 9)];
        s.modules[0].input_fields = vec![2, 42];
        s.modules.push(module(vec![]));
        let mut c = ctx();
        c.derived.base_batch = 10;
        c.derived.micro_batches = 20;
        c.excluded_tables = vec![77];
        let cfg = PipelineConfig::new(vec![PassId::KInterleaving, PassId::DPacking]);
        let mut diags = lint_spec(&s, None);
        diags.extend(lint_plan(&s, &c, &cfg, &[]));
        assert!(diags.len() >= 8, "{diags:?}");
        for d in &diags {
            assert!(
                picasso_lint::rules::rule(&d.rule).is_some(),
                "unregistered rule id {}",
                d.rule
            );
        }
    }
}
