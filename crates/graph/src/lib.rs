//! # picasso-graph
//!
//! Logical WDL training graphs and the PICASSO optimization passes.
//!
//! A [`WdlSpec`] describes one model's per-iteration work — embedding lookup
//! chains, feature-interaction modules, and the MLP — normalized per
//! training instance. The passes in [`passes`] implement the paper's
//! packing and interleaving transformations, [`stats::graph_stats`]
//! reproduces the Table V operation accounting, and [`lint`] runs the
//! spec- and plan-surface rules of the `picasso-lint` static analyzer.

#![warn(missing_docs)]

pub mod lint;
pub mod ops;
pub mod passes;
pub mod spec;
pub mod stats;

pub use lint::{lint_plan, lint_spec};
pub use ops::{OpClass, OpKind};
pub use passes::pipeline::{
    DerivedPlan, Pass, PassId, Pipeline, PipelineConfig, PipelineError, PlanContext,
    GROUP_WINDOW_SECS, MEMORY_AMPLIFICATION,
};
pub use passes::report::{run_pass, PassReport};
pub use passes::{d_interleaving, d_packing, k_interleaving, k_packing};
pub use picasso_lint::{Diagnostic, LintReport, Severity, Span};
pub use spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind, WdlSpec};
pub use stats::{graph_stats, GraphStats};
