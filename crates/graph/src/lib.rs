//! # picasso-graph
//!
//! Logical WDL training graphs and the PICASSO optimization passes.
//!
//! A [`WdlSpec`] describes one model's per-iteration work — embedding lookup
//! chains, feature-interaction modules, and the MLP — normalized per
//! training instance. The passes in [`passes`] implement the paper's
//! packing and interleaving transformations, and [`stats::graph_stats`]
//! reproduces the Table V operation accounting.

#![warn(missing_docs)]

pub mod ops;
pub mod passes;
pub mod spec;
pub mod stats;

pub use ops::{OpClass, OpKind};
pub use passes::pipeline::{
    DerivedPlan, Pass, PassId, Pipeline, PipelineConfig, PipelineError, PlanContext,
    GROUP_WINDOW_SECS, MEMORY_AMPLIFICATION,
};
pub use passes::report::{run_pass, PassReport};
pub use passes::{d_interleaving, d_packing, k_interleaving, k_packing};
pub use spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind, WdlSpec};
pub use stats::{graph_stats, GraphStats};
