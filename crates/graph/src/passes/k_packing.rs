//! K-Packing (§III-B): kernel fusion *within* a hardware-resource class.
//!
//! Unlike hand-written huge kernels (which would destroy cross-resource
//! interleaving opportunities) or compiler codegen (defeated by dynamic
//! shapes), PICASSO fuses only kernels bounded by the same resource:
//! `Unique`+`Partition` (host memory) and `Shuffle`+`Stitch` (network) in
//! the embedding chains, and the small dense kernels inside each
//! interaction module (compute).

use crate::spec::WdlSpec;

/// Fraction of a module's kernel launches remaining after fusing its
/// same-class compute kernels.
pub const DENSE_FUSION_FACTOR: f64 = 0.4;

/// Minimum micro-ops a fused module keeps (a module is at least one kernel
/// plus I/O glue).
pub const MIN_FUSED_MICRO_OPS: u32 = 4;

/// Applies kernel fusion to every chain and module of `spec`. Idempotent:
/// an already-fused spec (all chains carry both fusion flags) is returned
/// unchanged, so module kernels are never fused twice.
pub fn apply(spec: &WdlSpec) -> WdlSpec {
    let already_fused = !spec.chains.is_empty()
        && spec
            .chains
            .iter()
            .all(|c| c.fused_unique_partition && c.fused_shuffle_stitch);
    if already_fused {
        return spec.clone();
    }
    let mut out = spec.clone();
    for c in &mut out.chains {
        c.fused_unique_partition = true;
        c.fused_shuffle_stitch = true;
    }
    for m in &mut out.modules {
        let fused = (m.micro_ops_forward as f64 * DENSE_FUSION_FACTOR).round() as u32;
        m.micro_ops_forward = fused.max(MIN_FUSED_MICRO_OPS).min(m.micro_ops_forward);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind};

    fn spec() -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: vec![EmbeddingChain::for_table(0, 8, vec![0], 1.0)],
            modules: vec![InteractionModule {
                kind: ModuleKind::Attention,
                input_fields: vec![0],
                flops_per_instance: 100.0,
                bytes_per_instance: 10.0,
                params: 10.0,
                output_width: 8,
                micro_ops_forward: 30,
            }],
            mlp: MlpSpec::new(8, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn fuses_chain_stages() {
        let fused = apply(&spec());
        assert!(fused.chains[0].fused_unique_partition);
        assert!(fused.chains[0].fused_shuffle_stitch);
        assert!(fused.chains[0].micro_ops_forward() < spec().chains[0].micro_ops_forward());
    }

    #[test]
    fn fuses_module_kernels_with_floor() {
        let fused = apply(&spec());
        assert_eq!(fused.modules[0].micro_ops_forward, 12);
        let mut tiny = spec();
        tiny.modules[0].micro_ops_forward = 5;
        let fused_tiny = apply(&tiny);
        assert_eq!(fused_tiny.modules[0].micro_ops_forward, 4, "floor applies");
        let mut minimal = spec();
        minimal.modules[0].micro_ops_forward = 2;
        let fused_min = apply(&minimal);
        assert_eq!(fused_min.modules[0].micro_ops_forward, 2, "never grows");
    }

    #[test]
    fn work_volumes_are_untouched() {
        let before = spec();
        let after = apply(&before);
        assert_eq!(
            before.modules[0].flops_per_instance,
            after.modules[0].flops_per_instance
        );
        assert_eq!(
            before.chains[0].embedding_bytes_per_instance(),
            after.chains[0].embedding_bytes_per_instance()
        );
    }

    #[test]
    fn idempotent() {
        let once = apply(&spec());
        let twice = apply(&once);
        assert_eq!(
            once.modules[0].micro_ops_forward,
            twice.modules[0].micro_ops_forward
        );
        assert_eq!(
            once.chains[0].micro_ops_forward(),
            twice.chains[0].micro_ops_forward()
        );
    }
}
