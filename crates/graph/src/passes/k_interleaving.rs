//! K-Interleaving (§III-C): partition packed embedding operations into
//! groups that execute in a staggered pipeline.
//!
//! Chains are ordered by *downstream affinity* — the first interaction
//! module that consumes their output — and split into groups whose processed
//! parameter volume respects the Eq. 3 capacity. The execution engine then
//! chains control dependencies between consecutive groups so that group
//! `g+1`'s communication overlaps group `g`'s downstream compute, diffusing
//! the pulse-like resource usage of the unoptimized graph.
//!
//! The affinity ordering is computed from a field→module inverted index
//! built in one pass over the modules, and group assignment mutates the
//! spec in place: the planner ([`crate::passes::pipeline`]) computes the
//! ordering once per plan and reuses it in `apply`, so the pass costs one
//! linear scan plus one sort instead of the historical quadratic
//! module-position scan over a cloned spec.

use crate::spec::WdlSpec;
use picasso_lint::{EffectSet, Resource, ResourceKind};

/// Eq. 3: `Capacity_g = min_op (RBound_op / RParam_op)` — the parameter
/// volume one interleaving group may process without being bounded by any
/// single resource. Each entry is `(RBound, RParam)` for one operator class:
/// the bound value of its dominant resource and the per-parameter cost on
/// that resource.
pub fn eq3_capacity(ops: &[(f64, f64)]) -> f64 {
    ops.iter()
        .filter(|&&(_, r_param)| r_param > 0.0)
        .map(|&(r_bound, r_param)| r_bound / r_param)
        .fold(f64::INFINITY, f64::min)
}

/// Per-chain exclusion flags for `spec` as [`mark_excluded_in_place`] would
/// set them: a chain is excluded if it already carries the flag or touches
/// one of `tables`. Lets planners reason about the post-exclusion graph
/// without cloning it.
pub fn exclusion_flags(spec: &WdlSpec, tables: &[usize]) -> Vec<bool> {
    spec.chains
        .iter()
        .map(|c| {
            c.interleave_excluded
                || (!tables.is_empty() && c.tables.iter().any(|t| tables.contains(t)))
        })
        .collect()
}

/// Affinity-sorted chain ordering: the non-excluded chains (per `excluded`,
/// one flag per chain) sorted by the smallest module index consuming any of
/// their fields, ties broken by chain index.
///
/// The smallest consuming module per field is an inverted index built in
/// one pass over the modules; a chain's affinity is the minimum over its
/// fields, which equals the first `modules.iter().position(..)` hit of the
/// historical per-chain scan.
pub fn order_by_affinity(spec: &WdlSpec, excluded: &[bool]) -> Vec<usize> {
    let max_field = spec
        .modules
        .iter()
        .flat_map(|m| m.input_fields.iter())
        .copied()
        .max()
        .map(|f| f as usize + 1)
        .unwrap_or(0);
    // first_module[f] = smallest module index consuming field f.
    let mut first_module = vec![usize::MAX; max_field];
    for (mi, m) in spec.modules.iter().enumerate() {
        for &f in &m.input_fields {
            let slot = &mut first_module[f as usize];
            if *slot == usize::MAX {
                *slot = mi;
            }
        }
    }
    let affinity = |i: usize| -> usize {
        spec.chains[i]
            .fields
            .iter()
            .map(|&f| first_module.get(f as usize).copied().unwrap_or(usize::MAX))
            .min()
            .unwrap_or(usize::MAX)
    };
    let mut order: Vec<(usize, usize)> = (0..spec.chains.len())
        .filter(|&i| !excluded.get(i).copied().unwrap_or(false))
        .map(|i| (affinity(i), i))
        .collect();
    order.sort_unstable();
    order.into_iter().map(|(_, i)| i).collect()
}

/// Assigns the chains listed in `order` to `n_groups` contiguous groups
/// balanced by embedding byte volume, in place. Excluded chains are forced
/// into group 0. `order` must be the affinity ordering of the non-excluded
/// chains (see [`order_by_affinity`]).
pub fn assign_groups(spec: &mut WdlSpec, n_groups: usize, order: &[usize]) {
    assert!(n_groups >= 1, "need at least one group");
    let total_bytes: f64 = order
        .iter()
        .map(|&i| spec.chains[i].embedding_bytes_per_instance())
        .sum();
    let per_group = total_bytes / n_groups as f64;

    let mut group = 0u32;
    let mut acc = 0.0;
    for &i in order {
        spec.chains[i].group = group;
        acc += spec.chains[i].embedding_bytes_per_instance();
        if acc >= per_group * (group + 1) as f64 && (group as usize) < n_groups - 1 {
            group += 1;
        }
    }
    for c in spec.chains.iter_mut().filter(|c| c.interleave_excluded) {
        c.group = 0;
    }
}

/// Assigns `spec`'s chains to `n_groups` interleaving groups, in place,
/// deriving the affinity ordering from the spec itself.
pub fn apply_in_place(spec: &mut WdlSpec, n_groups: usize) {
    let excluded: Vec<bool> = spec.chains.iter().map(|c| c.interleave_excluded).collect();
    let order = order_by_affinity(spec, &excluded);
    assign_groups(spec, n_groups, &order);
}

/// Returns `spec` with its chains assigned to `n_groups` interleaving
/// groups.
///
/// Chains are sorted by the smallest module index consuming any of their
/// fields (so a group's outputs feed a compact set of modules and its
/// downstream compute can start as soon as the group lands), then split into
/// contiguous groups balanced by embedding byte volume. Excluded chains
/// (`interleave_excluded`) stay in group 0 with no ordering constraint.
pub fn apply(spec: &WdlSpec, n_groups: usize) -> WdlSpec {
    let mut out = spec.clone();
    apply_in_place(&mut out, n_groups);
    out
}

/// Marks every chain touching one of `tables` as `interleave_excluded`, in
/// place (the paper's *preset excluded embedding*, §III-C: outputs that feed
/// no concatenation can advance their downstream freely).
pub fn mark_excluded_in_place(spec: &mut WdlSpec, tables: &[usize]) {
    if tables.is_empty() {
        return;
    }
    for chain in &mut spec.chains {
        if chain.tables.iter().any(|t| tables.contains(t)) {
            chain.interleave_excluded = true;
        }
    }
}

/// Returns `spec` with every chain touching one of `tables` marked
/// `interleave_excluded`. Marked chains keep group 0 in [`apply`] and don't
/// count toward the Eq. 3 volume in [`auto_group_count`].
pub fn mark_excluded(spec: &WdlSpec, tables: &[usize]) -> WdlSpec {
    let mut out = spec.clone();
    mark_excluded_in_place(&mut out, tables);
    out
}

/// Chooses a group count from the Eq. 3 capacity: enough groups that no
/// group processes more than `capacity` parameters per instance, bounded by
/// the number of chains. `excluded` overrides the chains' own flags (one
/// per chain), so planners can evaluate a prospective exclusion without
/// materializing it.
pub fn auto_group_count_filtered(spec: &WdlSpec, capacity: f64, excluded: &[bool]) -> usize {
    if capacity <= 0.0 || !capacity.is_finite() {
        return 1;
    }
    let total_params_per_instance: f64 = spec
        .chains
        .iter()
        .enumerate()
        .filter(|&(i, _)| !excluded.get(i).copied().unwrap_or(false))
        .map(|(_, c)| c.ids_per_instance * c.dim as f64)
        .sum();
    let wanted = (total_params_per_instance / capacity).ceil() as usize;
    wanted.clamp(1, spec.chains.len().max(1))
}

/// Chooses a group count from the Eq. 3 capacity using the chains' own
/// `interleave_excluded` flags.
pub fn auto_group_count(spec: &WdlSpec, capacity: f64) -> usize {
    let excluded: Vec<bool> = spec.chains.iter().map(|c| c.interleave_excluded).collect();
    auto_group_count_filtered(spec, capacity, &excluded)
}

/// Per-group effect summaries: for every interleaving group, the union of
/// shared-resource effects its chains' lowered stages will declare (the
/// same key convention the executor's derivation table uses — chain `i`
/// owns `shard:c{i}`, `cache:c{i}`, `dirty:c{i}`).
///
/// A chain's forward gather reads its shard (and hot cache when caching is
/// on); its backward scatter reduce-adds into the same storage and marks
/// the checkpoint dirty set. The summary is the provenance record for why
/// K-Interleaving's staggered groups are safe to overlap: every mutation a
/// group performs lands on resources keyed by its own chains, so the
/// cross-group effect sets are disjoint (see [`groups_effect_disjoint`]).
/// Indexing is by group id; groups with no chains summarize as empty.
pub fn group_effects(spec: &WdlSpec) -> Vec<EffectSet> {
    let n_groups = spec.group_count();
    let mut out = vec![EffectSet::empty(); n_groups];
    for (ci, chain) in spec.chains.iter().enumerate() {
        let key = format!("c{ci}");
        let mut set = std::mem::take(&mut out[chain.group as usize])
            .read(Resource::new(ResourceKind::EmbeddingShard, &key))
            .reduce(Resource::new(ResourceKind::EmbeddingShard, &key))
            .reduce(Resource::new(ResourceKind::CkptDirty, &key));
        if chain.cache_hit_ratio > 0.0 {
            set = set
                .read(Resource::new(ResourceKind::CacheHot, &key))
                .reduce(Resource::new(ResourceKind::CacheHot, &key));
        }
        out[chain.group as usize] = set;
    }
    out
}

/// True when no two groups' effect summaries touch a common resource —
/// the invariant that makes the staggered group schedule race-free by
/// construction (each group mutates only storage keyed by its own chains).
pub fn groups_effect_disjoint(groups: &[EffectSet]) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    for g in groups {
        let mut mine = std::collections::BTreeSet::new();
        for e in &g.effects {
            mine.insert(e.resource.to_string());
        }
        for r in mine {
            if !seen.insert(r) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind};

    fn spec(n_chains: usize) -> WdlSpec {
        let chains: Vec<EmbeddingChain> = (0..n_chains)
            .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
            .collect();
        // Two modules, each consuming half the fields.
        let half = n_chains / 2;
        let modules = vec![
            InteractionModule {
                kind: ModuleKind::Attention,
                input_fields: (0..half as u32).collect(),
                flops_per_instance: 10.0,
                bytes_per_instance: 8.0,
                params: 4.0,
                output_width: 8,
                micro_ops_forward: 10,
            },
            InteractionModule {
                kind: ModuleKind::Gru,
                input_fields: (half as u32..n_chains as u32).collect(),
                flops_per_instance: 10.0,
                bytes_per_instance: 8.0,
                params: 4.0,
                output_width: 8,
                micro_ops_forward: 10,
            },
        ];
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains,
            modules,
            mlp: MlpSpec::new(16, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn eq3_takes_the_tightest_bound() {
        // PCIe: 16e9 B/s bound, 4 bytes/param => 4e9 params.
        // Network: 4e9 B/s bound, 8 bytes/param => 5e8 params.
        let cap = eq3_capacity(&[(16e9, 4.0), (4e9, 8.0)]);
        assert_eq!(cap, 5e8);
        assert_eq!(eq3_capacity(&[(1.0, 0.0)]), f64::INFINITY);
    }

    #[test]
    fn groups_are_contiguous_over_module_affinity() {
        let s = apply(&spec(8), 2);
        assert_eq!(s.group_count(), 2);
        // Chains feeding module 0 (fields 0..4) land in group 0; module 1's
        // in group 1 — downstream compute of group 0 can start early.
        for c in &s.chains {
            let g_expected = if c.fields[0] < 4 { 0 } else { 1 };
            assert_eq!(c.group, g_expected, "chain fields {:?}", c.fields);
        }
    }

    #[test]
    fn inverted_index_ordering_matches_the_module_position_scan() {
        // The reference affinity: the first module whose inputs intersect
        // the chain's fields, found by a linear scan over the modules —
        // the pre-refactor definition, kept here as the oracle.
        for n in [2usize, 5, 8, 13] {
            let s = spec(n);
            let reference = |chain_fields: &[u32]| -> usize {
                s.modules
                    .iter()
                    .position(|m| m.input_fields.iter().any(|f| chain_fields.contains(f)))
                    .unwrap_or(usize::MAX)
            };
            let mut expected: Vec<usize> = (0..s.chains.len()).collect();
            expected.sort_by_key(|&i| (reference(&s.chains[i].fields), i));
            let excluded = vec![false; s.chains.len()];
            assert_eq!(order_by_affinity(&s, &excluded), expected, "n={n}");
        }
    }

    #[test]
    fn unconsumed_fields_sort_last() {
        let mut s = spec(6);
        // Chain 0 now produces a field no module consumes.
        s.chains[0].fields = vec![99];
        let excluded = vec![false; s.chains.len()];
        let order = order_by_affinity(&s, &excluded);
        assert_eq!(*order.last().unwrap(), 0, "unconsumed chain sorts last");
    }

    #[test]
    fn group_volumes_are_balanced() {
        let s = apply(&spec(12), 3);
        let mut vol = [0.0f64; 3];
        for c in &s.chains {
            vol[c.group as usize] += c.embedding_bytes_per_instance();
        }
        let total: f64 = vol.iter().sum();
        for v in vol {
            assert!(v > total / 6.0, "unbalanced groups: {vol:?}");
        }
    }

    #[test]
    fn one_group_means_no_interleaving() {
        let s = apply(&spec(6), 1);
        assert!(s.chains.iter().all(|c| c.group == 0));
        assert_eq!(s.group_count(), 1);
    }

    #[test]
    fn excluded_chains_stay_in_group_zero() {
        let mut s = spec(8);
        s.chains[7].interleave_excluded = true;
        let s = apply(&s, 4);
        assert_eq!(s.chains[7].group, 0);
    }

    #[test]
    fn mark_excluded_flags_matching_chains_only() {
        let s = mark_excluded(&spec(8), &[2, 5]);
        for c in &s.chains {
            assert_eq!(c.interleave_excluded, c.tables == [2] || c.tables == [5]);
        }
        // Empty exclusion list marks nothing.
        let base = mark_excluded(&spec(4), &[]);
        assert!(base.chains.iter().all(|c| !c.interleave_excluded));
    }

    #[test]
    fn exclusion_flags_match_mark_excluded() {
        let s = spec(8);
        let flags = exclusion_flags(&s, &[2, 5]);
        let marked = mark_excluded(&s, &[2, 5]);
        let from_spec: Vec<bool> = marked
            .chains
            .iter()
            .map(|c| c.interleave_excluded)
            .collect();
        assert_eq!(flags, from_spec);
        assert_eq!(exclusion_flags(&s, &[]), vec![false; 8]);
    }

    #[test]
    fn auto_group_count_scales_with_volume() {
        let s = spec(10); // 10 chains x 1 id x dim 8 = 80 params/instance
        assert_eq!(auto_group_count(&s, 40.0), 2);
        assert_eq!(auto_group_count(&s, 8.0), 10);
        assert_eq!(auto_group_count(&s, 1.0), 10, "clamped to chain count");
        assert_eq!(auto_group_count(&s, f64::INFINITY), 1);
        assert_eq!(auto_group_count(&s, 0.0), 1);
    }

    #[test]
    fn more_groups_than_chains_is_clamped_by_assignment() {
        let s = apply(&spec(2), 8);
        // Only 2 chains exist; group ids stay dense and small.
        assert!(s.group_count() <= 2);
    }

    #[test]
    fn group_effect_summaries_are_keyed_by_chain_and_disjoint() {
        let s = apply(&spec(8), 2);
        let groups = group_effects(&s);
        assert_eq!(groups.len(), 2);
        // Every chain's shard + dirty set appears in exactly its group.
        for (ci, chain) in s.chains.iter().enumerate() {
            let g = &groups[chain.group as usize];
            let shard = format!("shard:c{ci}");
            let dirty = format!("dirty:c{ci}");
            assert!(
                g.effects.iter().any(|e| e.resource.to_string() == shard),
                "group {} missing {shard}",
                chain.group
            );
            assert!(g.effects.iter().any(|e| e.resource.to_string() == dirty));
        }
        // No caching configured => no cache effects anywhere.
        assert!(groups
            .iter()
            .flat_map(|g| &g.effects)
            .all(|e| !e.resource.to_string().starts_with("cache:")));
        assert!(
            groups_effect_disjoint(&groups),
            "staggered groups must not share mutable storage"
        );
    }

    #[test]
    fn cached_chains_add_hot_storage_to_their_group_summary() {
        let mut s = spec(4);
        s.chains[1].cache_hit_ratio = 0.4;
        let s = apply(&s, 2);
        let groups = group_effects(&s);
        let g = &groups[s.chains[1].group as usize];
        assert!(g
            .effects
            .iter()
            .any(|e| e.resource.to_string() == "cache:c1"));
        assert!(groups_effect_disjoint(&groups));
        // A shared resource across groups breaks disjointness.
        let shared = EffectSet::empty().reduce(Resource::new(ResourceKind::CacheHot, "c1"));
        assert!(!groups_effect_disjoint(&[shared.clone(), shared]));
    }
}
