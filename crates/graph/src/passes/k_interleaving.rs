//! K-Interleaving (§III-C): partition packed embedding operations into
//! groups that execute in a staggered pipeline.
//!
//! Chains are ordered by *downstream affinity* — the first interaction
//! module that consumes their output — and split into groups whose processed
//! parameter volume respects the Eq. 3 capacity. The execution engine then
//! chains control dependencies between consecutive groups so that group
//! `g+1`'s communication overlaps group `g`'s downstream compute, diffusing
//! the pulse-like resource usage of the unoptimized graph.

use crate::spec::WdlSpec;

/// Eq. 3: `Capacity_g = min_op (RBound_op / RParam_op)` — the parameter
/// volume one interleaving group may process without being bounded by any
/// single resource. Each entry is `(RBound, RParam)` for one operator class:
/// the bound value of its dominant resource and the per-parameter cost on
/// that resource.
pub fn eq3_capacity(ops: &[(f64, f64)]) -> f64 {
    ops.iter()
        .filter(|&&(_, r_param)| r_param > 0.0)
        .map(|&(r_bound, r_param)| r_bound / r_param)
        .fold(f64::INFINITY, f64::min)
}

/// Returns `spec` with its chains assigned to `n_groups` interleaving
/// groups.
///
/// Chains are sorted by the smallest module index consuming any of their
/// fields (so a group's outputs feed a compact set of modules and its
/// downstream compute can start as soon as the group lands), then split into
/// contiguous groups balanced by embedding byte volume. Excluded chains
/// (`interleave_excluded`) stay in group 0 with no ordering constraint.
pub fn apply(spec: &WdlSpec, n_groups: usize) -> WdlSpec {
    assert!(n_groups >= 1, "need at least one group");
    let mut spec = spec.clone();
    // Affinity: first consuming module per field.
    let affinity = |chain_fields: &[u32]| -> usize {
        spec.modules
            .iter()
            .position(|m| m.input_fields.iter().any(|f| chain_fields.contains(f)))
            .unwrap_or(usize::MAX)
    };
    let mut order: Vec<usize> = (0..spec.chains.len())
        .filter(|&i| !spec.chains[i].interleave_excluded)
        .collect();
    order.sort_by_key(|&i| (affinity(&spec.chains[i].fields), i));

    let total_bytes: f64 = order
        .iter()
        .map(|&i| spec.chains[i].embedding_bytes_per_instance())
        .sum();
    let per_group = total_bytes / n_groups as f64;

    let mut group = 0u32;
    let mut acc = 0.0;
    for &i in &order {
        spec.chains[i].group = group;
        acc += spec.chains[i].embedding_bytes_per_instance();
        if acc >= per_group * (group + 1) as f64 && (group as usize) < n_groups - 1 {
            group += 1;
        }
    }
    for c in spec.chains.iter_mut().filter(|c| c.interleave_excluded) {
        c.group = 0;
    }
    spec
}

/// Returns `spec` with every chain touching one of `tables` marked
/// `interleave_excluded` (the paper's *preset excluded embedding*, §III-C:
/// outputs that feed no concatenation can advance their downstream freely).
/// Marked chains keep group 0 in [`apply`] and don't count toward the Eq. 3
/// volume in [`auto_group_count`].
pub fn mark_excluded(spec: &WdlSpec, tables: &[usize]) -> WdlSpec {
    let mut spec = spec.clone();
    if !tables.is_empty() {
        for chain in &mut spec.chains {
            if chain.tables.iter().any(|t| tables.contains(t)) {
                chain.interleave_excluded = true;
            }
        }
    }
    spec
}

/// Chooses a group count from the Eq. 3 capacity: enough groups that no
/// group processes more than `capacity` parameters per instance, bounded by
/// the number of chains.
pub fn auto_group_count(spec: &WdlSpec, capacity: f64) -> usize {
    if capacity <= 0.0 || !capacity.is_finite() {
        return 1;
    }
    let total_params_per_instance: f64 = spec
        .chains
        .iter()
        .filter(|c| !c.interleave_excluded)
        .map(|c| c.ids_per_instance * c.dim as f64)
        .sum();
    let wanted = (total_params_per_instance / capacity).ceil() as usize;
    wanted.clamp(1, spec.chains.len().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind};

    fn spec(n_chains: usize) -> WdlSpec {
        let chains: Vec<EmbeddingChain> = (0..n_chains)
            .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
            .collect();
        // Two modules, each consuming half the fields.
        let half = n_chains / 2;
        let modules = vec![
            InteractionModule {
                kind: ModuleKind::Attention,
                input_fields: (0..half as u32).collect(),
                flops_per_instance: 10.0,
                bytes_per_instance: 8.0,
                params: 4.0,
                output_width: 8,
                micro_ops_forward: 10,
            },
            InteractionModule {
                kind: ModuleKind::Gru,
                input_fields: (half as u32..n_chains as u32).collect(),
                flops_per_instance: 10.0,
                bytes_per_instance: 8.0,
                params: 4.0,
                output_width: 8,
                micro_ops_forward: 10,
            },
        ];
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains,
            modules,
            mlp: MlpSpec::new(16, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn eq3_takes_the_tightest_bound() {
        // PCIe: 16e9 B/s bound, 4 bytes/param => 4e9 params.
        // Network: 4e9 B/s bound, 8 bytes/param => 5e8 params.
        let cap = eq3_capacity(&[(16e9, 4.0), (4e9, 8.0)]);
        assert_eq!(cap, 5e8);
        assert_eq!(eq3_capacity(&[(1.0, 0.0)]), f64::INFINITY);
    }

    #[test]
    fn groups_are_contiguous_over_module_affinity() {
        let s = apply(&spec(8), 2);
        assert_eq!(s.group_count(), 2);
        // Chains feeding module 0 (fields 0..4) land in group 0; module 1's
        // in group 1 — downstream compute of group 0 can start early.
        for c in &s.chains {
            let g_expected = if c.fields[0] < 4 { 0 } else { 1 };
            assert_eq!(c.group, g_expected, "chain fields {:?}", c.fields);
        }
    }

    #[test]
    fn group_volumes_are_balanced() {
        let s = apply(&spec(12), 3);
        let mut vol = [0.0f64; 3];
        for c in &s.chains {
            vol[c.group as usize] += c.embedding_bytes_per_instance();
        }
        let total: f64 = vol.iter().sum();
        for v in vol {
            assert!(v > total / 6.0, "unbalanced groups: {vol:?}");
        }
    }

    #[test]
    fn one_group_means_no_interleaving() {
        let s = apply(&spec(6), 1);
        assert!(s.chains.iter().all(|c| c.group == 0));
        assert_eq!(s.group_count(), 1);
    }

    #[test]
    fn excluded_chains_stay_in_group_zero() {
        let mut s = spec(8);
        s.chains[7].interleave_excluded = true;
        let s = apply(&s, 4);
        assert_eq!(s.chains[7].group, 0);
    }

    #[test]
    fn mark_excluded_flags_matching_chains_only() {
        let s = mark_excluded(&spec(8), &[2, 5]);
        for c in &s.chains {
            assert_eq!(c.interleave_excluded, c.tables == [2] || c.tables == [5]);
        }
        // Empty exclusion list marks nothing.
        let base = mark_excluded(&spec(4), &[]);
        assert!(base.chains.iter().all(|c| !c.interleave_excluded));
    }

    #[test]
    fn auto_group_count_scales_with_volume() {
        let s = spec(10); // 10 chains x 1 id x dim 8 = 80 params/instance
        assert_eq!(auto_group_count(&s, 40.0), 2);
        assert_eq!(auto_group_count(&s, 8.0), 10);
        assert_eq!(auto_group_count(&s, 1.0), 10, "clamped to chain count");
        assert_eq!(auto_group_count(&s, f64::INFINITY), 1);
        assert_eq!(auto_group_count(&s, 0.0), 1);
    }

    #[test]
    fn more_groups_than_chains_is_clamped_by_assignment() {
        let s = apply(&spec(2), 8);
        // Only 2 chains exist; group ids stay dense and small.
        assert!(s.group_count() <= 2);
    }
}
