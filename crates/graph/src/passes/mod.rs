//! The PICASSO graph-optimization passes (§III-B, §III-C).
//!
//! Each pass transforms a [`crate::spec::WdlSpec`]:
//!
//! - [`d_packing`] merges per-table embedding chains into packed operations
//!   according to a planner-provided table-to-pack assignment.
//! - [`k_packing`] fuses same-resource-class kernels (`Unique`+`Partition`,
//!   `Shuffle`+`Stitch`, dense module kernels).
//! - [`k_interleaving`] assigns chains to staggered execution groups sized
//!   by Eq. 3.
//! - [`d_interleaving`] enables micro-batch pipelining sized by Eq. 2.
//!
//! [`report::run_pass`] wraps any of them with span tracing and
//! before/after operation accounting, and [`pipeline`] composes them into a
//! validated, declarative pass sequence driven by a [`pipeline::PlanContext`].

pub mod d_interleaving;
pub mod d_packing;
pub mod k_interleaving;
pub mod k_packing;
pub mod pipeline;
pub mod report;
