//! Pass instrumentation: per-pass operation accounting and spans.
//!
//! [`run_pass`] wraps a graph transformation, measuring it against the
//! tracer's clock (wall time in the trainer, manual in tests) and counting
//! operations before and after with [`graph_stats`]. The resulting
//! [`PassReport`] carries the Table V story — how many operations a pass
//! removed (packing) or added (interleaving supplements) — and can be
//! exported into a metrics registry.

use crate::spec::WdlSpec;
use crate::stats::graph_stats;
use picasso_obs::{Clock, MetricKind, MetricsRegistry, Tracer};

/// What one optimization pass did to the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PassReport {
    /// Pass name, e.g. `d_packing`.
    pub pass: String,
    /// Total graph operations before the pass.
    pub ops_before: u64,
    /// Total graph operations after the pass.
    pub ops_after: u64,
    /// Embedding chains before the pass.
    pub chains_before: usize,
    /// Embedding chains after the pass.
    pub chains_after: usize,
    /// Pass duration against the tracer's clock, nanoseconds.
    pub duration_ns: u64,
}

impl PassReport {
    /// Operations kept per operation before the pass: `< 1` means the pass
    /// packed the graph, `> 1` means it supplemented operations
    /// (interleaving). `1.0` for an empty graph.
    pub fn packing_ratio(&self) -> f64 {
        if self.ops_before == 0 {
            1.0
        } else {
            self.ops_after as f64 / self.ops_before as f64
        }
    }

    /// Exports the report into `registry`, labeled by pass name.
    pub fn export(&self, registry: &MetricsRegistry) {
        registry.describe(
            "graph_passes_total",
            MetricKind::Counter,
            "Optimization passes applied",
        );
        registry.describe(
            "graph_pass_ops",
            MetricKind::Gauge,
            "Total graph operations around a pass (when = before / after)",
        );
        registry.describe(
            "graph_pass_packing_ratio",
            MetricKind::Gauge,
            "Operations kept per operation before the pass",
        );
        registry.describe(
            "graph_pass_duration_seconds",
            MetricKind::Gauge,
            "Pass wall-clock duration",
        );
        let labels = [("pass", self.pass.as_str())];
        registry.counter_add("graph_passes_total", &labels, 1);
        registry.gauge_set(
            "graph_pass_ops",
            &[("pass", self.pass.as_str()), ("when", "before")],
            self.ops_before as f64,
        );
        registry.gauge_set(
            "graph_pass_ops",
            &[("pass", self.pass.as_str()), ("when", "after")],
            self.ops_after as f64,
        );
        registry.gauge_set("graph_pass_packing_ratio", &labels, self.packing_ratio());
        registry.gauge_set(
            "graph_pass_duration_seconds",
            &labels,
            self.duration_ns as f64 / 1e9,
        );
    }
}

/// Runs pass `f` on `spec` in place, recording a span named after the pass
/// on the `passes` track of `tracer` (annotated with the op counts) and
/// returning the [`PassReport`]. Only `f` itself is timed — the
/// before/after op accounting stays outside the measured window, so
/// `duration_ns` is the cost of the rewrite alone.
pub fn run_pass<C: Clock>(
    name: &str,
    spec: &mut WdlSpec,
    tracer: &Tracer<C>,
    f: impl FnOnce(&mut WdlSpec),
) -> PassReport {
    let before = graph_stats(spec);
    let chains_before = spec.chains.len();
    let start_ns = tracer.clock().now_ns();
    f(spec);
    let end_ns = tracer.clock().now_ns();
    let after = graph_stats(spec);
    let report = PassReport {
        pass: name.to_string(),
        ops_before: before.total_ops,
        ops_after: after.total_ops,
        chains_before,
        chains_after: spec.chains.len(),
        duration_ns: end_ns.saturating_sub(start_ns),
    };
    tracer.record_span(
        "passes",
        name,
        start_ns,
        end_ns,
        &[
            ("ops_before", &before.total_ops.to_string()),
            ("ops_after", &after.total_ops.to_string()),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{d_packing, k_packing};
    use crate::spec::{EmbeddingChain, Layer, MlpSpec};
    use picasso_obs::ManualClock;
    use std::collections::BTreeMap;

    fn spec(tables: usize) -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: (0..tables)
                .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
                .collect(),
            modules: vec![],
            mlp: MlpSpec::new(8, vec![64, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn packing_pass_reports_the_reduction() {
        let mut base = spec(40);
        let tracer = Tracer::new(ManualClock::new());
        tracer.clock().set_ns(100);
        let assign: BTreeMap<usize, usize> = (0..40).map(|t| (t, t / 10)).collect();
        let dp = run_pass("d_packing", &mut base, &tracer, |s| {
            tracer.clock().advance_ns(50);
            *s = d_packing::apply(s, &assign);
        });
        let kp = run_pass("k_packing", &mut base, &tracer, |s| {
            *s = k_packing::apply(s);
        });
        assert_eq!(dp.chains_before, 40);
        assert_eq!(dp.chains_after, 4);
        assert!(dp.packing_ratio() < 0.5, "ratio {}", dp.packing_ratio());
        assert!(kp.packing_ratio() <= 1.0);
        assert_eq!(dp.duration_ns, 50);
        // Spans landed on the passes track with op-count annotations.
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].track, "passes");
        assert_eq!(spans[0].name, "d_packing");
        assert_eq!(spans[0].start_ns, 100);
        assert!(spans[0]
            .args
            .iter()
            .any(|(k, v)| k == "ops_before" && v == &dp.ops_before.to_string()));
    }

    #[test]
    fn export_produces_labeled_series() {
        let mut base = spec(10);
        let tracer = Tracer::new(ManualClock::new());
        let report = run_pass("k_packing", &mut base, &tracer, |s| {
            *s = k_packing::apply(s);
        });
        let registry = MetricsRegistry::new();
        report.export(&registry);
        assert_eq!(
            registry.counter_value("graph_passes_total", &[("pass", "k_packing")]),
            1
        );
        assert_eq!(
            registry.gauge_value(
                "graph_pass_ops",
                &[("pass", "k_packing"), ("when", "before")]
            ),
            Some(report.ops_before as f64)
        );
        assert_eq!(
            registry.gauge_value("graph_pass_packing_ratio", &[("pass", "k_packing")]),
            Some(report.packing_ratio())
        );
    }

    #[test]
    fn empty_graph_has_unit_ratio() {
        let r = PassReport {
            pass: "noop".into(),
            ops_before: 0,
            ops_after: 0,
            chains_before: 0,
            chains_after: 0,
            duration_ns: 0,
        };
        assert_eq!(r.packing_ratio(), 1.0);
    }
}
