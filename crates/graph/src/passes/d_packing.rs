//! D-Packing (§III-B): merge embedding chains that share a feature
//! dimension into packed operations.
//!
//! The pack assignment itself (which tables go together, how over-heavy
//! packs are sharded by Eq. 1) is computed by the embedding planner from
//! warm-up statistics; this pass rewrites the logical graph accordingly: the
//! chains of all tables assigned to one pack collapse into a single chain
//! whose stages launch once for the combined ID tensor.

use crate::spec::{EmbeddingChain, WdlSpec};
use std::collections::BTreeMap;

/// Applies a pack assignment to `spec`, merging chains.
///
/// `table_to_pack` maps every embedding table in the spec to its pack index.
/// Chains whose tables map to the same pack are merged; the merged chain's
/// volume fields are sums, and `unique_ratio` / `cache_hit_ratio` are
/// ID-weighted averages. Panics if two tables in one pack have different
/// dimensions (the planner groups by dimension, so this indicates a bug).
pub fn apply(spec: &WdlSpec, table_to_pack: &BTreeMap<usize, usize>) -> WdlSpec {
    let mut packs: BTreeMap<usize, Vec<&EmbeddingChain>> = BTreeMap::new();
    for chain in &spec.chains {
        // A baseline chain covers exactly one table; already-packed chains
        // keep their first table as the routing key.
        let table = chain.tables[0];
        let pack = *table_to_pack
            .get(&table)
            .unwrap_or_else(|| panic!("table {table} has no pack assignment"));
        packs.entry(pack).or_default().push(chain);
    }

    let mut chains = Vec::with_capacity(packs.len());
    for (_, members) in packs {
        let dim = members[0].dim;
        let mut merged = EmbeddingChain {
            fields: Vec::new(),
            tables: Vec::new(),
            dim,
            ids_per_instance: 0.0,
            pooled_rows_per_instance: 0.0,
            unique_ratio: 0.0,
            fused_unique_partition: members.iter().all(|c| c.fused_unique_partition),
            fused_shuffle_stitch: members.iter().all(|c| c.fused_shuffle_stitch),
            group: members[0].group,
            cache_hit_ratio: 0.0,
            interleave_excluded: members.iter().all(|c| c.interleave_excluded),
        };
        for c in members {
            assert_eq!(c.dim, dim, "pack mixes dimensions {dim} and {}", c.dim);
            merged.fields.extend_from_slice(&c.fields);
            merged.tables.extend_from_slice(&c.tables);
            merged.ids_per_instance += c.ids_per_instance;
            merged.pooled_rows_per_instance += c.pooled_rows_per_instance;
            merged.unique_ratio += c.unique_ratio * c.ids_per_instance;
            merged.cache_hit_ratio += c.cache_hit_ratio * c.ids_per_instance;
        }
        merged.unique_ratio /= merged.ids_per_instance;
        merged.cache_hit_ratio /= merged.ids_per_instance;
        merged.fields.sort_unstable();
        merged.tables.sort_unstable();
        chains.push(merged);
    }

    WdlSpec {
        chains,
        ..spec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Layer, MlpSpec};

    fn spec_with_tables(dims: &[usize]) -> WdlSpec {
        let chains = dims
            .iter()
            .enumerate()
            .map(|(t, &dim)| EmbeddingChain::for_table(t, dim, vec![t as u32], 2.0))
            .collect();
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 10.0,
            chains,
            modules: vec![],
            mlp: MlpSpec::new(8, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    fn assign(pairs: &[(usize, usize)]) -> BTreeMap<usize, usize> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn merges_same_pack_chains() {
        let spec = spec_with_tables(&[8, 8, 8, 16]);
        let packed = apply(&spec, &assign(&[(0, 0), (1, 0), (2, 0), (3, 1)]));
        assert_eq!(packed.chains.len(), 2);
        let p0 = &packed.chains[0];
        assert_eq!(p0.tables, vec![0, 1, 2]);
        assert_eq!(p0.ids_per_instance, 6.0);
        assert_eq!(p0.pooled_rows_per_instance, 3.0);
        assert_eq!(p0.dim, 8);
        packed.validate().unwrap();
    }

    #[test]
    fn preserves_total_volume() {
        let spec = spec_with_tables(&[8, 8, 16, 16, 16]);
        let packed = apply(&spec, &assign(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 1)]));
        let before: f64 = spec
            .chains
            .iter()
            .map(|c| c.embedding_bytes_per_instance())
            .sum();
        let after: f64 = packed
            .chains
            .iter()
            .map(|c| c.embedding_bytes_per_instance())
            .sum();
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn averages_ratios_by_id_weight() {
        let mut spec = spec_with_tables(&[8, 8]);
        spec.chains[0].unique_ratio = 0.2;
        spec.chains[0].ids_per_instance = 3.0;
        spec.chains[1].unique_ratio = 0.8;
        spec.chains[1].ids_per_instance = 1.0;
        let packed = apply(&spec, &assign(&[(0, 0), (1, 0)]));
        let want = (0.2 * 3.0 + 0.8 * 1.0) / 4.0;
        assert!((packed.chains[0].unique_ratio - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mixes dimensions")]
    fn rejects_mixed_dims_in_one_pack() {
        let spec = spec_with_tables(&[8, 16]);
        let _ = apply(&spec, &assign(&[(0, 0), (1, 0)]));
    }

    #[test]
    #[should_panic(expected = "no pack assignment")]
    fn rejects_missing_assignment() {
        let spec = spec_with_tables(&[8, 8]);
        let _ = apply(&spec, &assign(&[(0, 0)]));
    }
}
