//! The declarative optimization-pass pipeline.
//!
//! PICASSO's contribution is a *sequence of graph transformations* whose
//! parameters come from workload measurement (Eq. 1–3). This module turns
//! that sequence into a first-class, configurable object:
//!
//! - [`PassId`] names the built-in passes; [`PipelineConfig`] is the
//!   serializable, ordered pass list a run applies (ablations are pass
//!   lists, not flag structs).
//! - [`Pipeline`] validates a configuration — packing before interleaving,
//!   at most one application per pass, unknown passes rejected at parse
//!   time — and runs each pass instrumented through
//!   [`run_pass`], so every configured
//!   pass produces a [`PassReport`] even when it derives a no-op (e.g. an
//!   enabled interleaving pass whose planner lands on `groups == 1`).
//! - [`PlanContext`] carries what pass planners consume: the machine
//!   preset, memory budgets, warm-up-derived planner inputs (the Eq. 1
//!   table→pack mapping), explicit knob overrides, and the parameters the
//!   planners derive (Eq. 2 batch, micro-batch count, Eq. 3 group count).
//! - [`Pass`] is the extension seam: `name`, `plan` (derive parameters
//!   into the context), `apply` (an in-place graph rewrite on the
//!   pipeline's working spec).

use crate::passes::report::{run_pass, PassReport};
use crate::passes::{d_interleaving, d_packing, k_interleaving, k_packing};
use crate::spec::{Layer, WdlSpec};
use picasso_obs::{Clock, Tracer};
use picasso_sim::MachineSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Memory amplification of framework execution over the analytic
/// feature-map volume: retained per-op activations, gradient buffers,
/// allocator fragmentation and workspace. Applied when deriving the largest
/// feasible batch from GPU memory (Eq. 2's device-memory case).
pub const MEMORY_AMPLIFICATION: f64 = 16.0;

/// Pipeline-depth window used to derive the Eq. 3 group capacity: a group
/// should occupy its tightest resource for at most this long.
pub const GROUP_WINDOW_SECS: f64 = 0.002;

/// Identifier of one built-in optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PassId {
    /// D-Packing: merge per-table chains into packed operations (§III-B).
    DPacking,
    /// K-Packing: same-resource kernel fusion (§III-B).
    KPacking,
    /// K-Interleaving: staggered execution groups sized by Eq. 3 (§III-C).
    KInterleaving,
    /// D-Interleaving: micro-batch pipelining sized by Eq. 2 (§III-C).
    DInterleaving,
    /// HybridHash caching: reserve a Hot-storage budget on the GPU (§III-D).
    /// A bookkeeping pass — the graph is untouched; its presence routes the
    /// Hot-storage budget into warm-up and batch sizing.
    Caching,
}

impl PassId {
    /// Every built-in pass, in the canonical full-PICASSO order.
    pub const ALL: [PassId; 5] = [
        PassId::DPacking,
        PassId::KPacking,
        PassId::KInterleaving,
        PassId::DInterleaving,
        PassId::Caching,
    ];

    /// Stable pass name (also the telemetry / metrics label).
    pub fn name(self) -> &'static str {
        match self {
            PassId::DPacking => "d_packing",
            PassId::KPacking => "k_packing",
            PassId::KInterleaving => "k_interleaving",
            PassId::DInterleaving => "d_interleaving",
            PassId::Caching => "caching",
        }
    }

    /// Parses a pass name; unknown names are rejected.
    pub fn parse(name: &str) -> Result<PassId, PipelineError> {
        PassId::ALL
            .into_iter()
            .find(|id| id.name() == name)
            .ok_or_else(|| PipelineError::UnknownPass(name.to_string()))
    }

    /// Packing passes must run before interleaving passes.
    pub(crate) fn is_packing(self) -> bool {
        matches!(self, PassId::DPacking | PassId::KPacking)
    }

    pub(crate) fn is_interleaving(self) -> bool {
        matches!(self, PassId::KInterleaving | PassId::DInterleaving)
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a pipeline configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A pass name did not resolve to any built-in pass.
    UnknownPass(String),
    /// A pass appears more than once (at most one application per pass).
    DuplicatePass(PassId),
    /// A packing pass is listed after an interleaving pass; interleaving
    /// planners size groups and micro-batches against the *packed* graph.
    OrderingViolation {
        /// The offending packing pass.
        packing: PassId,
        /// The interleaving pass it was listed after.
        interleaving: PassId,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownPass(name) => write!(f, "unknown pass '{name}'"),
            PipelineError::DuplicatePass(id) => {
                write!(f, "pass '{id}' listed more than once")
            }
            PipelineError::OrderingViolation {
                packing,
                interleaving,
            } => write!(
                f,
                "pass '{packing}' must run before '{interleaving}': interleaving \
                 planners size their parameters against the packed graph"
            ),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A serializable, ordered pass list: the declarative description of which
/// optimizations a run applies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Passes to apply, in order.
    pub passes: Vec<PassId>,
}

impl PipelineConfig {
    /// A pipeline applying `passes` in order (validated when a
    /// [`Pipeline`] is built from it).
    pub fn new(passes: Vec<PassId>) -> PipelineConfig {
        PipelineConfig { passes }
    }

    /// The empty pipeline (baselines and PICASSO(Base)).
    pub fn none() -> PipelineConfig {
        PipelineConfig { passes: Vec::new() }
    }

    /// Every pass in canonical order (full PICASSO).
    pub fn all() -> PipelineConfig {
        PipelineConfig {
            passes: PassId::ALL.to_vec(),
        }
    }

    /// Full PICASSO minus both packing passes (Table IV "w/o Packing").
    pub fn without_packing() -> PipelineConfig {
        PipelineConfig::all().without(&[PassId::DPacking, PassId::KPacking])
    }

    /// Full PICASSO minus both interleaving passes (Table IV
    /// "w/o Interleaving").
    pub fn without_interleaving() -> PipelineConfig {
        PipelineConfig::all().without(&[PassId::KInterleaving, PassId::DInterleaving])
    }

    /// Full PICASSO minus caching (Table IV "w/o Caching").
    pub fn without_caching() -> PipelineConfig {
        PipelineConfig::all().without(&[PassId::Caching])
    }

    /// The forward-only serving pipeline: packing (fewer, larger kernel
    /// launches amortize per-request dispatch) and caching (HybridHash as a
    /// read-mostly serving cache), but no interleaving — interleaving
    /// staggers gradient collectives against backward compute, and a serving
    /// graph has neither.
    pub fn serving() -> PipelineConfig {
        PipelineConfig {
            passes: vec![PassId::DPacking, PassId::KPacking, PassId::Caching],
        }
    }

    /// This pipeline with `removed` filtered out (ablation construction).
    pub fn without(&self, removed: &[PassId]) -> PipelineConfig {
        PipelineConfig {
            passes: self
                .passes
                .iter()
                .copied()
                .filter(|id| !removed.contains(id))
                .collect(),
        }
    }

    /// Builds a pipeline from pass names, rejecting unknown ones.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Result<PipelineConfig, PipelineError> {
        let passes = names
            .iter()
            .map(|n| PassId::parse(n.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PipelineConfig { passes })
    }

    /// The configured pass names, in order (the serial form of the config).
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|id| id.name()).collect()
    }

    /// Whether `id` is part of this pipeline.
    pub fn enables(&self, id: PassId) -> bool {
        self.passes.contains(&id)
    }

    /// Validates ordering (packing before interleaving) and uniqueness
    /// (at most one application per pass).
    pub fn validate(&self) -> Result<(), PipelineError> {
        for (i, &id) in self.passes.iter().enumerate() {
            if self.passes[..i].contains(&id) {
                return Err(PipelineError::DuplicatePass(id));
            }
            if id.is_packing() {
                if let Some(&inter) = self.passes[..i].iter().find(|p| p.is_interleaving()) {
                    return Err(PipelineError::OrderingViolation {
                        packing: id,
                        interleaving: inter,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Parameters the pass planners derived for this run.
#[derive(Debug, Clone)]
pub struct DerivedPlan {
    /// Eq. 2's device-memory batch bound (0 = not derived yet).
    pub base_batch: usize,
    /// D-interleaving micro-batch count (1 = off).
    pub micro_batches: usize,
    /// K-interleaving group count (1 = off).
    pub groups: usize,
}

impl Default for DerivedPlan {
    fn default() -> Self {
        DerivedPlan {
            base_batch: 0,
            micro_batches: 1,
            groups: 1,
        }
    }
}

/// Everything a pass planner may consult: machine preset, memory budgets,
/// warm-up-derived planner inputs, explicit knob overrides — plus the
/// [`DerivedPlan`] the planners fill in as the pipeline runs.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Machine preset of the cluster the run targets.
    pub machine: MachineSpec,
    /// HybridHash Hot-storage budget in bytes (0 = caching disabled).
    pub hot_bytes: u64,
    /// Memory amplification applied to the analytic feature-map volume in
    /// the Eq. 2 device-memory case.
    pub memory_amplification: f64,
    /// Lower clamp on the derived batch.
    pub min_batch: usize,
    /// Upper clamp on the derived batch.
    pub max_batch: usize,
    /// Explicit micro-batch override (None = heuristic).
    pub micro_batches: Option<usize>,
    /// Explicit group-count override (None = Eq. 3 auto).
    pub groups: Option<usize>,
    /// Planner-provided Eq. 1 mapping: embedding table → pack index
    /// (from [`PackPlan::table_to_pack`] in `picasso-embedding`; empty
    /// means D-Packing is a no-op).
    ///
    /// [`PackPlan::table_to_pack`]: https://docs.rs/picasso-embedding
    pub table_to_pack: BTreeMap<usize, usize>,
    /// Embedding tables excluded from K-interleaving control dependencies
    /// (the paper's *preset excluded embedding*, §III-C).
    pub excluded_tables: Vec<usize>,
    /// Pipeline-depth window for the Eq. 3 group capacity.
    pub group_window_secs: f64,
    /// Layer from which D-interleaving applies (Fig. 8a vs 8b).
    pub interleave_from: Layer,
    /// Parameters derived by the pass planners.
    pub derived: DerivedPlan,
    /// Affinity-sorted chain ordering cached by the K-Interleaving planner
    /// (over the post-exclusion graph), so `apply` assigns groups in place
    /// without re-deriving the ordering. `None` until that planner runs.
    pub(crate) interleave_order: Option<Vec<usize>>,
}

impl PlanContext {
    /// A context for `machine` with the trainer's default budgets and no
    /// explicit overrides.
    pub fn new(machine: MachineSpec) -> PlanContext {
        PlanContext {
            machine,
            hot_bytes: 0,
            memory_amplification: MEMORY_AMPLIFICATION,
            min_batch: 256,
            max_batch: 65_536,
            micro_batches: None,
            groups: None,
            table_to_pack: BTreeMap::new(),
            excluded_tables: Vec::new(),
            group_window_secs: GROUP_WINDOW_SECS,
            interleave_from: Layer::Embedding,
            derived: DerivedPlan::default(),
            interleave_order: None,
        }
    }

    /// Eq. 2's device-memory batch bound for `spec`: feature-map bytes per
    /// instance (amplified) against the memory left after dense parameters
    /// (params + grads + optimizer slots) and Hot-storage. Derived once —
    /// the first caller (normally an interleaving planner, on the packed
    /// graph) fixes the value for the rest of the run.
    pub fn plan_base_batch(&mut self, spec: &WdlSpec) -> usize {
        if self.derived.base_batch == 0 {
            let resident = spec.dense_params() * 4.0 * 3.0;
            self.derived.base_batch = d_interleaving::memory_bound_batch(
                self.machine.gpu.mem_capacity as f64,
                self.hot_bytes as f64,
                resident,
                spec.feature_map_bytes_per_instance() * self.memory_amplification,
            )
            .clamp(self.min_batch, self.max_batch);
        }
        self.derived.base_batch
    }
}

/// One optimization pass: a named planner + graph rewrite.
///
/// `plan` derives the pass's parameters from the current spec into the
/// shared [`PlanContext`]; `apply` performs the rewrite in place on the
/// pipeline's working spec (no per-pass clone). Implement this trait to
/// plug a new optimization into the pipeline.
pub trait Pass {
    /// Which built-in pass this is (names the telemetry lane).
    fn id(&self) -> PassId;

    /// Stable pass name.
    fn name(&self) -> &'static str {
        self.id().name()
    }

    /// Derives this pass's parameters into `ctx.derived`. Runs immediately
    /// before `apply`, on the spec as transformed by earlier passes.
    fn plan(&self, spec: &WdlSpec, ctx: &mut PlanContext) {
        let _ = (spec, ctx);
    }

    /// Applies the rewrite in place. Must be total: when the planner
    /// derived a no-op (e.g. one group), leave the spec equivalent so the
    /// pass still records a [`PassReport`].
    fn apply(&self, spec: &mut WdlSpec, ctx: &PlanContext);
}

/// D-Packing: collapse chains according to the planner's Eq. 1 mapping.
struct DPackingPass;

impl Pass for DPackingPass {
    fn id(&self) -> PassId {
        PassId::DPacking
    }

    fn apply(&self, spec: &mut WdlSpec, ctx: &PlanContext) {
        if ctx.table_to_pack.is_empty() {
            // No planner mapping supplied: nothing to merge.
            return;
        }
        *spec = d_packing::apply(spec, &ctx.table_to_pack);
    }
}

/// K-Packing: fuse same-resource-class kernels.
struct KPackingPass;

impl Pass for KPackingPass {
    fn id(&self) -> PassId {
        PassId::KPacking
    }

    fn apply(&self, spec: &mut WdlSpec, _ctx: &PlanContext) {
        *spec = k_packing::apply(spec);
    }
}

/// K-Interleaving: derive the Eq. 3 group count and assign staggered
/// groups. Preset-excluded tables are marked here — exclusion is part of
/// the pass, so excluded chains neither constrain the group count nor
/// participate in volume balancing.
struct KInterleavingPass;

/// Eq. 3-derived group count for the machine's interconnect bounds. Shared
/// between the K-Interleaving planner and the plan-surface lint (which
/// re-derives the capacity-respecting count to flag explicit overrides
/// that overfill a group).
pub(crate) fn eq3_auto_groups(spec: &WdlSpec, ctx: &PlanContext, batch: usize) -> usize {
    let excluded: Vec<bool> = spec.chains.iter().map(|c| c.interleave_excluded).collect();
    eq3_auto_groups_filtered(spec, ctx, batch, &excluded)
}

/// [`eq3_auto_groups`] with explicit per-chain exclusion flags, so the
/// K-Interleaving planner can evaluate a prospective exclusion without
/// cloning the spec.
fn eq3_auto_groups_filtered(
    spec: &WdlSpec,
    ctx: &PlanContext,
    batch: usize,
    excluded: &[bool],
) -> usize {
    // Params one group may process per pipeline window on its tightest
    // resource (network and PCIe both move ~4 bytes per parameter).
    let capacity_batch = k_interleaving::eq3_capacity(&[
        (ctx.machine.nic_bw * ctx.group_window_secs, 4.0),
        (ctx.machine.pcie_bw * ctx.group_window_secs, 4.0),
    ]);
    let capacity_per_instance = capacity_batch / batch.max(1) as f64;
    k_interleaving::auto_group_count_filtered(spec, capacity_per_instance, excluded).clamp(1, 11)
}

impl Pass for KInterleavingPass {
    fn id(&self) -> PassId {
        PassId::KInterleaving
    }

    fn plan(&self, spec: &WdlSpec, ctx: &mut PlanContext) {
        let base = ctx.plan_base_batch(spec);
        // Exclusion flags as `apply` will set them, computed without
        // cloning the spec: excluded chains neither count toward the Eq. 3
        // volume nor appear in the affinity ordering.
        let excluded = k_interleaving::exclusion_flags(spec, &ctx.excluded_tables);
        ctx.derived.groups = match ctx.groups {
            Some(g) => g,
            None => eq3_auto_groups_filtered(spec, ctx, base, &excluded),
        };
        ctx.interleave_order = Some(k_interleaving::order_by_affinity(spec, &excluded));
    }

    fn apply(&self, spec: &mut WdlSpec, ctx: &PlanContext) {
        k_interleaving::mark_excluded_in_place(spec, &ctx.excluded_tables);
        match &ctx.interleave_order {
            // The planner ran on this exact spec; reuse its ordering.
            Some(order) => k_interleaving::assign_groups(spec, ctx.derived.groups, order),
            None => k_interleaving::apply_in_place(spec, ctx.derived.groups),
        }
    }
}

/// D-Interleaving: derive the micro-batch count and enable pipelining.
struct DInterleavingPass;

impl Pass for DInterleavingPass {
    fn id(&self) -> PassId {
        PassId::DInterleaving
    }

    fn plan(&self, spec: &WdlSpec, ctx: &mut PlanContext) {
        // Fix the Eq. 2 bound on the spec as it stands (packed, pre-split);
        // the trainer scales the final batch by the micro count against it.
        ctx.plan_base_batch(spec);
        ctx.derived.micro_batches = ctx
            .micro_batches
            .unwrap_or_else(|| d_interleaving::default_micro_batches(spec));
    }

    fn apply(&self, spec: &mut WdlSpec, ctx: &PlanContext) {
        *spec = d_interleaving::apply(spec, ctx.derived.micro_batches, ctx.interleave_from);
    }
}

/// HybridHash caching: bookkeeping only. The Hot-storage budget travels in
/// [`PlanContext::hot_bytes`] (consumed by warm-up measurement and Eq. 2
/// batch sizing); the logical graph is untouched.
struct CachingPass;

impl Pass for CachingPass {
    fn id(&self) -> PassId {
        PassId::Caching
    }

    fn apply(&self, _spec: &mut WdlSpec, _ctx: &PlanContext) {
        // Bookkeeping only: the logical graph is untouched (and no longer
        // cloned just to say so).
    }
}

fn builtin(id: PassId) -> Box<dyn Pass> {
    match id {
        PassId::DPacking => Box::new(DPackingPass),
        PassId::KPacking => Box::new(KPackingPass),
        PassId::KInterleaving => Box::new(KInterleavingPass),
        PassId::DInterleaving => Box::new(DInterleavingPass),
        PassId::Caching => Box::new(CachingPass),
    }
}

/// A validated, runnable pass sequence.
pub struct Pipeline {
    config: PipelineConfig,
    passes: Vec<Box<dyn Pass>>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.config.names())
            .finish()
    }
}

impl Pipeline {
    /// Builds the pipeline for `config`, validating it first.
    pub fn from_config(config: &PipelineConfig) -> Result<Pipeline, PipelineError> {
        config.validate()?;
        Ok(Pipeline {
            config: config.clone(),
            passes: config.passes.iter().map(|&id| builtin(id)).collect(),
        })
    }

    /// The configuration this pipeline was built from.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Plans and applies every pass in order, instrumented: each pass —
    /// including ones that derive a no-op — lands a span on the tracer's
    /// `passes` track and a [`PassReport`] in the returned list. The
    /// plan-surface analyzer then runs over the transformed spec and the
    /// derived plan; its findings are returned as the third element
    /// (enabled-but-no-op passes, Eq. 2 split problems, Eq. 3 capacity
    /// violations — see `crate::lint`).
    pub fn run<C: Clock>(
        &self,
        spec: &WdlSpec,
        ctx: &mut PlanContext,
        tracer: &Tracer<C>,
    ) -> (WdlSpec, Vec<PassReport>, Vec<picasso_lint::Diagnostic>) {
        let mut spec = spec.clone();
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            pass.plan(&spec, ctx);
            let report = run_pass(pass.name(), &mut spec, tracer, |s| pass.apply(s, ctx));
            reports.push(report);
        }
        let diagnostics = crate::lint::lint_plan(&spec, ctx, &self.config, &reports);
        (spec, reports, diagnostics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, MlpSpec};
    use picasso_obs::ManualClock;

    fn spec(tables: usize) -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: (0..tables)
                .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
                .collect(),
            modules: vec![],
            mlp: MlpSpec::new(8, vec![64, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    fn ctx() -> PlanContext {
        PlanContext::new(MachineSpec::eflops())
    }

    #[test]
    fn full_config_validates_and_lists_names() {
        let cfg = PipelineConfig::all();
        cfg.validate().unwrap();
        assert_eq!(
            cfg.names(),
            [
                "d_packing",
                "k_packing",
                "k_interleaving",
                "d_interleaving",
                "caching"
            ]
        );
        assert!(cfg.enables(PassId::Caching));
        assert!(!PipelineConfig::none().enables(PassId::DPacking));
    }

    #[test]
    fn ablation_constructors_drop_the_named_passes() {
        assert!(!PipelineConfig::without_packing().enables(PassId::DPacking));
        assert!(!PipelineConfig::without_packing().enables(PassId::KPacking));
        assert!(PipelineConfig::without_packing().enables(PassId::Caching));
        assert!(!PipelineConfig::without_interleaving().enables(PassId::DInterleaving));
        assert!(!PipelineConfig::without_interleaving().enables(PassId::KInterleaving));
        assert!(!PipelineConfig::without_caching().enables(PassId::Caching));
        assert!(PipelineConfig::without_caching().enables(PassId::DPacking));
        for cfg in [
            PipelineConfig::without_packing(),
            PipelineConfig::without_interleaving(),
            PipelineConfig::without_caching(),
        ] {
            cfg.validate().unwrap();
            assert_ne!(cfg, PipelineConfig::all());
        }
    }

    #[test]
    fn duplicate_passes_are_rejected() {
        let cfg = PipelineConfig::new(vec![PassId::DPacking, PassId::DPacking]);
        assert_eq!(
            cfg.validate(),
            Err(PipelineError::DuplicatePass(PassId::DPacking))
        );
        assert!(Pipeline::from_config(&cfg).is_err());
    }

    #[test]
    fn packing_after_interleaving_is_rejected() {
        let cfg = PipelineConfig::new(vec![PassId::KInterleaving, PassId::DPacking]);
        assert_eq!(
            cfg.validate(),
            Err(PipelineError::OrderingViolation {
                packing: PassId::DPacking,
                interleaving: PassId::KInterleaving,
            })
        );
        // Caching is unordered with respect to everything.
        PipelineConfig::new(vec![
            PassId::Caching,
            PassId::DPacking,
            PassId::KInterleaving,
        ])
        .validate()
        .unwrap();
    }

    #[test]
    fn unknown_pass_names_are_rejected() {
        let err = PipelineConfig::from_names(&["d_packing", "frobnicate"]).unwrap_err();
        assert_eq!(err, PipelineError::UnknownPass("frobnicate".into()));
        assert!(err.to_string().contains("frobnicate"));
        let ok = PipelineConfig::from_names(&["d_packing", "caching"]).unwrap();
        assert_eq!(ok.passes, vec![PassId::DPacking, PassId::Caching]);
    }

    #[test]
    fn names_round_trip_through_from_names() {
        let cfg = PipelineConfig::all();
        let back = PipelineConfig::from_names(&cfg.names()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn serving_preset_is_valid_and_excludes_interleaving() {
        let cfg = PipelineConfig::serving();
        cfg.validate().unwrap();
        assert!(cfg.enables(PassId::DPacking));
        assert!(cfg.enables(PassId::KPacking));
        assert!(cfg.enables(PassId::Caching));
        assert!(!cfg.enables(PassId::KInterleaving));
        assert!(!cfg.enables(PassId::DInterleaving));
        Pipeline::from_config(&cfg).unwrap();
    }

    #[test]
    fn pipeline_records_a_report_per_configured_pass() {
        // Interleaving passes that derive a no-op (1 group / 1 micro-batch
        // on this tiny spec with explicit overrides) still report.
        let cfg = PipelineConfig::new(vec![PassId::KInterleaving, PassId::DInterleaving]);
        let pipeline = Pipeline::from_config(&cfg).unwrap();
        let mut ctx = ctx();
        ctx.groups = Some(1);
        ctx.micro_batches = Some(1);
        let tracer = Tracer::new(ManualClock::new());
        let base = spec(6);
        let (out, reports, diags) = pipeline.run(&base, &mut ctx, &tracer);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].pass, "k_interleaving");
        assert_eq!(reports[1].pass, "d_interleaving");
        for r in &reports {
            assert_eq!(r.ops_before, r.ops_after, "{} should be a no-op", r.pass);
        }
        assert_eq!(out.micro_batches, 1);
        assert_eq!(out.group_count(), 1);
        assert_eq!(tracer.spans().len(), 2);
        // Both passes were enabled but planned no-ops: the plan analyzer
        // flags each as a warning, never an error.
        let noops: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "plan.noop-pass")
            .collect();
        assert_eq!(noops.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.severity != picasso_lint::Severity::Error));
    }

    #[test]
    fn full_pipeline_packs_and_interleaves() {
        let base = spec(40);
        let mut ctx = ctx();
        ctx.table_to_pack = (0..40).map(|t| (t, t / 10)).collect();
        ctx.groups = Some(2);
        ctx.micro_batches = Some(3);
        let pipeline = Pipeline::from_config(&PipelineConfig::all()).unwrap();
        let tracer = Tracer::new(ManualClock::new());
        let (out, reports, diags) = pipeline.run(&base, &mut ctx, &tracer);
        assert!(
            diags
                .iter()
                .all(|d| d.severity != picasso_lint::Severity::Error),
            "{diags:?}"
        );
        assert_eq!(out.chains.len(), 4);
        assert_eq!(out.group_count(), 2);
        assert_eq!(out.micro_batches, 3);
        assert_eq!(reports.len(), 5);
        assert!(reports[0].packing_ratio() < 1.0, "d_packing packs");
        assert_eq!(ctx.derived.groups, 2);
        assert_eq!(ctx.derived.micro_batches, 3);
        out.validate().unwrap();
    }

    #[test]
    fn exclusion_is_part_of_k_interleaving() {
        let base = spec(8);
        let mut ctx = ctx();
        ctx.excluded_tables = vec![7];
        ctx.groups = Some(4);
        let pipeline =
            Pipeline::from_config(&PipelineConfig::new(vec![PassId::KInterleaving])).unwrap();
        let tracer = Tracer::new(ManualClock::new());
        let (out, _, _) = pipeline.run(&base, &mut ctx, &tracer);
        let excluded: Vec<_> = out
            .chains
            .iter()
            .filter(|c| c.interleave_excluded)
            .collect();
        assert_eq!(excluded.len(), 1);
        assert_eq!(excluded[0].tables, vec![7]);
        assert_eq!(excluded[0].group, 0);
    }

    #[test]
    fn base_batch_derivation_is_cached_and_clamped() {
        let mut ctx = ctx();
        let s = spec(4);
        let b = ctx.plan_base_batch(&s);
        assert!(b >= ctx.min_batch && b <= ctx.max_batch);
        // Cached: changing the budget afterwards does not re-derive.
        ctx.hot_bytes = u64::MAX;
        assert_eq!(ctx.plan_base_batch(&s), b);
    }
}
