//! D-Interleaving (§III-C): micro-batch pipelining.
//!
//! Large batches are desirable for accuracy and throughput but blow through
//! GPU device memory (feature maps scale with batch size). D-interleaving
//! slices the batch into micro-batches from a chosen layer onward and
//! pipelines them, amortizing peak memory (Fig. 8a) or overlapping the whole
//! iteration (Fig. 8b). The micro-batch size comes from Eq. 2.

use crate::spec::{Layer, WdlSpec};

/// Eq. 2: `BS_micro = min_op (RBound_op / RInstance_op)` — the largest
/// micro-batch no operator's dominant resource can be bounded by. Each entry
/// is `(RBound, RInstance)`: the resource's bound value and the per-instance
/// cost on it.
pub fn eq2_micro_batch(ops: &[(f64, f64)]) -> f64 {
    ops.iter()
        .filter(|&&(_, r_inst)| r_inst > 0.0)
        .map(|&(r_bound, r_inst)| r_bound / r_inst)
        .fold(f64::INFINITY, f64::min)
}

/// Returns `spec` with D-interleaving enabled: `micro_batches` slices
/// starting at `from` (Fig. 8a: `Layer::Mlp`; Fig. 8b: `Layer::Embedding`).
pub fn apply(spec: &WdlSpec, micro_batches: usize, from: Layer) -> WdlSpec {
    assert!(micro_batches >= 1, "micro_batches must be >= 1");
    let mut spec = spec.clone();
    spec.micro_batches = micro_batches;
    spec.interleave_from = from;
    spec
}

/// Micro-batch heuristic: compute-heavy models pipeline deeper (the Fig. 14
/// observation that CAN and MMoE profit from more micro-batches), but
/// fragmentary graphs (packing disabled) cap the depth — each extra
/// micro-batch re-dispatches every chain's operations, and with hundreds of
/// unpacked chains the framework dispatch cost outweighs the overlap.
pub fn default_micro_batches(spec: &WdlSpec) -> usize {
    let flops = spec.dense_flops_per_instance();
    let by_compute = if flops > 5e6 {
        4
    } else if flops > 5e5 {
        3
    } else {
        2
    };
    if spec.chains.len() > 64 {
        by_compute.min(2)
    } else {
        by_compute
    }
}

/// Derives the micro-batch count for a target `batch` size from the Eq. 2
/// estimate: `ceil(batch / BS_micro)`, at least 1.
pub fn micro_batch_count(batch: usize, bs_micro: f64) -> usize {
    if !bs_micro.is_finite() || bs_micro <= 0.0 {
        return 1;
    }
    (batch as f64 / bs_micro).ceil().max(1.0) as usize
}

/// The largest batch that fits GPU device memory (the Eq. 2 special case
/// used across the experiments): feature-map bytes per instance against the
/// memory left after parameters and Hot-storage.
pub fn memory_bound_batch(
    gpu_mem_bytes: f64,
    hot_storage_bytes: f64,
    resident_bytes: f64,
    feature_map_bytes_per_instance: f64,
) -> usize {
    let available = gpu_mem_bytes - hot_storage_bytes - resident_bytes;
    if available <= 0.0 || feature_map_bytes_per_instance <= 0.0 {
        return 0;
    }
    (available / feature_map_bytes_per_instance).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, MlpSpec};

    fn spec() -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: vec![EmbeddingChain::for_table(0, 8, vec![0], 1.0)],
            modules: vec![],
            mlp: MlpSpec::new(8, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    }

    #[test]
    fn eq2_takes_tightest_bound() {
        // GPU mem: 32 GB bound, 1 MB per instance => 32768 instances.
        // PCIe-ish: 1e9 bound, 1e6 per instance => 1000 instances.
        let bs = eq2_micro_batch(&[(32e9, 1e6), (1e9, 1e6)]);
        assert_eq!(bs, 1000.0);
        assert_eq!(eq2_micro_batch(&[(1.0, 0.0)]), f64::INFINITY);
    }

    #[test]
    fn apply_sets_fields() {
        let s = apply(&spec(), 4, Layer::Mlp);
        assert_eq!(s.micro_batches, 4);
        assert_eq!(s.interleave_from, Layer::Mlp);
        s.validate().unwrap();
    }

    #[test]
    fn default_micro_batches_scales_with_compute() {
        let mut s = spec();
        assert_eq!(default_micro_batches(&s), 2, "light MLP pipelines shallow");
        s.mlp = MlpSpec::new(1024, vec![1024, 1024, 1]);
        assert!(
            default_micro_batches(&s) >= 3,
            "compute-heavy models pipeline deeper"
        );
        // Fragmentary graphs cap the depth regardless of compute.
        s.chains = (0..100)
            .map(|t| EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0))
            .collect();
        assert_eq!(default_micro_batches(&s), 2);
    }

    #[test]
    fn micro_batch_count_rounds_up() {
        assert_eq!(micro_batch_count(1000, 300.0), 4);
        assert_eq!(micro_batch_count(1000, 1000.0), 1);
        assert_eq!(micro_batch_count(1000, f64::INFINITY), 1);
        assert_eq!(micro_batch_count(1000, 0.0), 1);
    }

    #[test]
    fn memory_bound_batch_accounts_for_cache() {
        // 32 GB GPU, 1 GB cache, 2 GB resident, 1 MB/instance.
        let b = memory_bound_batch(32e9, 1e9, 2e9, 1e6);
        assert_eq!(b, 29000);
        // Bigger cache shrinks the feasible batch — the Table VI effect.
        let b2 = memory_bound_batch(32e9, 4e9, 2e9, 1e6);
        assert!(b2 < b);
        assert_eq!(memory_bound_batch(1e9, 2e9, 0.0, 1e6), 0);
    }

    #[test]
    #[should_panic(expected = "micro_batches must be >= 1")]
    fn zero_micro_batches_rejected() {
        apply(&spec(), 0, Layer::Mlp);
    }
}
