//! D-Interleaving (§III-C): micro-batch pipelining.
//!
//! Large batches are desirable for accuracy and throughput but blow through
//! GPU device memory (feature maps scale with batch size). D-interleaving
//! slices the batch into micro-batches from a chosen layer onward and
//! pipelines them, amortizing peak memory (Fig. 8a) or overlapping the whole
//! iteration (Fig. 8b). The micro-batch size comes from Eq. 2.

use crate::spec::{Layer, WdlSpec};

/// Eq. 2: `BS_micro = min_op (RBound_op / RInstance_op)` — the largest
/// micro-batch no operator's dominant resource can be bounded by. Each entry
/// is `(RBound, RInstance)`: the resource's bound value and the per-instance
/// cost on it.
pub fn eq2_micro_batch(ops: &[(f64, f64)]) -> f64 {
    ops.iter()
        .filter(|&&(_, r_inst)| r_inst > 0.0)
        .map(|&(r_bound, r_inst)| r_bound / r_inst)
        .fold(f64::INFINITY, f64::min)
}

/// Enables D-interleaving on `spec` with `micro_batches` slices starting at
/// `from` (Fig. 8a: `Layer::Mlp`; Fig. 8b: `Layer::Embedding`).
pub fn apply(spec: &mut WdlSpec, micro_batches: usize, from: Layer) {
    assert!(micro_batches >= 1, "micro_batches must be >= 1");
    spec.micro_batches = micro_batches;
    spec.interleave_from = from;
}

/// Derives the micro-batch count for a target `batch` size from the Eq. 2
/// estimate: `ceil(batch / BS_micro)`, at least 1.
pub fn micro_batch_count(batch: usize, bs_micro: f64) -> usize {
    if !bs_micro.is_finite() || bs_micro <= 0.0 {
        return 1;
    }
    (batch as f64 / bs_micro).ceil().max(1.0) as usize
}

/// The largest batch that fits GPU device memory (the Eq. 2 special case
/// used across the experiments): feature-map bytes per instance against the
/// memory left after parameters and Hot-storage.
pub fn memory_bound_batch(
    gpu_mem_bytes: f64,
    hot_storage_bytes: f64,
    resident_bytes: f64,
    feature_map_bytes_per_instance: f64,
) -> usize {
    let available = gpu_mem_bytes - hot_storage_bytes - resident_bytes;
    if available <= 0.0 || feature_map_bytes_per_instance <= 0.0 {
        return 0;
    }
    (available / feature_map_bytes_per_instance).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{EmbeddingChain, MlpSpec};

    fn spec() -> WdlSpec {
        WdlSpec {
            name: "t".into(),
            io_bytes_per_instance: 1.0,
            chains: vec![EmbeddingChain::for_table(0, 8, vec![0], 1.0)],
            modules: vec![],
            mlp: MlpSpec::new(8, vec![1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
        }
    }

    #[test]
    fn eq2_takes_tightest_bound() {
        // GPU mem: 32 GB bound, 1 MB per instance => 32768 instances.
        // PCIe-ish: 1e9 bound, 1e6 per instance => 1000 instances.
        let bs = eq2_micro_batch(&[(32e9, 1e6), (1e9, 1e6)]);
        assert_eq!(bs, 1000.0);
        assert_eq!(eq2_micro_batch(&[(1.0, 0.0)]), f64::INFINITY);
    }

    #[test]
    fn apply_sets_fields() {
        let mut s = spec();
        apply(&mut s, 4, Layer::Mlp);
        assert_eq!(s.micro_batches, 4);
        assert_eq!(s.interleave_from, Layer::Mlp);
        s.validate().unwrap();
    }

    #[test]
    fn micro_batch_count_rounds_up() {
        assert_eq!(micro_batch_count(1000, 300.0), 4);
        assert_eq!(micro_batch_count(1000, 1000.0), 1);
        assert_eq!(micro_batch_count(1000, f64::INFINITY), 1);
        assert_eq!(micro_batch_count(1000, 0.0), 1);
    }

    #[test]
    fn memory_bound_batch_accounts_for_cache() {
        // 32 GB GPU, 1 GB cache, 2 GB resident, 1 MB/instance.
        let b = memory_bound_batch(32e9, 1e9, 2e9, 1e6);
        assert_eq!(b, 29000);
        // Bigger cache shrinks the feasible batch — the Table VI effect.
        let b2 = memory_bound_batch(32e9, 4e9, 2e9, 1e6);
        assert!(b2 < b);
        assert_eq!(memory_bound_batch(1e9, 2e9, 0.0, 1e6), 0);
    }

    #[test]
    #[should_panic(expected = "micro_batches must be >= 1")]
    fn zero_micro_batches_rejected() {
        let mut s = spec();
        apply(&mut s, 0, Layer::Mlp);
    }
}
