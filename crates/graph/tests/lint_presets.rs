//! Property tests: every built-in pipeline preset lints clean on the
//! bench-suite model shapes.
//!
//! The perf-regression suite runs {W&D, CAN} x {base, pack, inter, cache};
//! those four rungs plus the ablation presets (`all`, `none`, `without_*`)
//! must never trip an error-severity rule on the committed models — the
//! analyzer exists to catch malformed specs and plans, not the shipped
//! configurations.

use picasso_graph::{
    lint_plan, lint_spec, Diagnostic, PassId, Pipeline, PipelineConfig, PlanContext, Severity,
    WdlSpec,
};
use picasso_models::ModelKind;
use picasso_obs::{ManualClock, Tracer};
use picasso_sim::MachineSpec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Every built-in preset plus the two partial bench-suite rungs that are
/// not already a preset (`base` == `none()`, `cache` == `all()`).
fn presets() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("all", PipelineConfig::all()),
        ("none", PipelineConfig::none()),
        ("without_packing", PipelineConfig::without_packing()),
        (
            "without_interleaving",
            PipelineConfig::without_interleaving(),
        ),
        ("without_caching", PipelineConfig::without_caching()),
        (
            "bench_pack",
            PipelineConfig::new(vec![PassId::DPacking, PassId::KPacking]),
        ),
        (
            "bench_inter",
            PipelineConfig::new(vec![
                PassId::DPacking,
                PassId::KPacking,
                PassId::KInterleaving,
                PassId::DInterleaving,
            ]),
        ),
    ]
}

/// The bench suite's models (the analyzer's plan rules are machine- and
/// pipeline-sensitive, not model-count-sensitive, so two shapes suffice).
const MODELS: [ModelKind; 2] = [ModelKind::WideDeep, ModelKind::Can];

/// An Eq. 1 mapping with the planner's guarantee: packs are
/// dim-homogeneous (tables only merge with tables of equal width).
fn eq1_mapping(spec: &WdlSpec) -> BTreeMap<usize, usize> {
    let mut packs: BTreeMap<usize, usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for c in &spec.chains {
        let next = packs.len();
        let pack = *packs.entry(c.dim).or_insert(next);
        for &t in &c.tables {
            out.insert(t, pack);
        }
    }
    out
}

/// All error-severity findings for one (model, preset, overrides) cell:
/// spec rules on the base and transformed graphs, plan rules on the
/// derived plan.
fn error_findings(
    model: ModelKind,
    cfg: &PipelineConfig,
    groups: Option<usize>,
    micro: Option<usize>,
) -> Vec<Diagnostic> {
    let data = model.default_dataset();
    let spec = model.build(&data);
    let table_dims: BTreeMap<usize, usize> =
        data.fields.iter().map(|f| (f.table_group, f.dim)).collect();
    let pipeline = Pipeline::from_config(cfg).expect("preset validates");
    let mut ctx = PlanContext::new(MachineSpec::eflops());
    ctx.table_to_pack = eq1_mapping(&spec);
    ctx.groups = groups;
    ctx.micro_batches = micro;
    if cfg.enables(PassId::Caching) {
        ctx.hot_bytes = 1 << 24;
    }
    let tracer = Tracer::new(ManualClock::new());
    let (out, reports, plan_diags) = pipeline.run(&spec, &mut ctx, &tracer);
    assert_eq!(reports.len(), cfg.passes.len(), "one report per pass");
    lint_spec(&spec, Some(&table_dims))
        .into_iter()
        .chain(lint_spec(&out, Some(&table_dims)))
        .chain(lint_plan(&out, &ctx, cfg, &reports))
        .chain(plan_diags)
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// The exact eight perf-gate scenarios, with the suite's default knobs.
#[test]
fn bench_suite_scenarios_lint_clean() {
    let rungs: [&[PassId]; 4] = [
        &[],
        &[PassId::DPacking, PassId::KPacking],
        &[
            PassId::DPacking,
            PassId::KPacking,
            PassId::KInterleaving,
            PassId::DInterleaving,
        ],
        &PassId::ALL,
    ];
    for model in MODELS {
        for passes in rungs {
            let cfg = PipelineConfig::new(passes.to_vec());
            let errors = error_findings(model, &cfg, None, None);
            assert!(
                errors.is_empty(),
                "{} x {:?}: {errors:?}",
                model.name(),
                cfg.names()
            );
        }
    }
}

proptest! {
    // Each case runs every preset on a model; a handful of cases covers
    // the override grid without making `cargo test` crawl.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No built-in preset produces an error-severity diagnostic on the
    /// committed bench models, under any explicit group / micro-batch
    /// override a config could plausibly set.
    #[test]
    fn builtin_presets_lint_clean_on_bench_models(
        model_pick in 0usize..MODELS.len(),
        groups_pick in 0usize..8,
        micro_pick in 0usize..6,
    ) {
        let model = MODELS[model_pick];
        // 0 means "no explicit override": the planners derive the value.
        let groups = (groups_pick > 0).then_some(groups_pick);
        let micro = (micro_pick > 0).then_some(micro_pick);
        for (name, cfg) in presets() {
            let errors = error_findings(model, &cfg, groups, micro);
            prop_assert!(
                errors.is_empty(),
                "preset {} on {}: {errors:?}",
                name,
                model.name()
            );
        }
    }
}
