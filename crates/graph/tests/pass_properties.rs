//! Property tests of the PICASSO graph passes.

use picasso_graph::{
    d_interleaving, d_packing, graph_stats, k_interleaving, k_packing, EmbeddingChain,
    InteractionModule, Layer, MlpSpec, ModuleKind, WdlSpec,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Random spec: `n_tables` tables with dims from a small set, fields 1:1
/// with tables, and a couple of modules over field ranges.
fn spec_strategy() -> impl Strategy<Value = WdlSpec> {
    (2usize..40, proptest::collection::vec(0usize..4, 2..40)).prop_map(|(n_modules_seed, dims)| {
        let dim_of = |i: usize| [4usize, 8, 16, 32][dims[i % dims.len()]];
        let n = dims.len();
        let chains: Vec<EmbeddingChain> = (0..n)
            .map(|t| {
                let mut c =
                    EmbeddingChain::for_table(t, dim_of(t), vec![t as u32], 1.0 + (t % 5) as f64);
                c.unique_ratio = 0.3 + 0.1 * (t % 7) as f64;
                c
            })
            .collect();
        // Cap the module count at the table count: a module whose field
        // filter comes up empty would violate `spec.no-input-module`.
        let n_modules = (1 + n_modules_seed % 5).min(n);
        let modules: Vec<InteractionModule> = (0..n_modules)
            .map(|m| {
                let fields: Vec<u32> = (0..n as u32)
                    .filter(|f| (*f as usize) % n_modules == m)
                    .collect();
                InteractionModule {
                    kind: ModuleKind::Attention,
                    input_fields: fields,
                    flops_per_instance: 100.0 * (m + 1) as f64,
                    bytes_per_instance: 16.0,
                    params: 8.0,
                    output_width: 8,
                    micro_ops_forward: 10 + m as u32,
                }
            })
            .collect();
        WdlSpec {
            name: "prop".into(),
            io_bytes_per_instance: 64.0,
            chains,
            modules,
            mlp: MlpSpec::new(64, vec![32, 1]),
            micro_batches: 1,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    })
}

/// A pack assignment grouping tables by dim (what the planner guarantees).
fn assignment_for(spec: &WdlSpec, shards_per_dim: usize) -> BTreeMap<usize, usize> {
    let mut next_pack: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    let mut counter = 0usize;
    for (i, c) in spec.chains.iter().enumerate() {
        let key = (c.dim, i % shards_per_dim);
        let pack = *next_pack.entry(key).or_insert_with(|| {
            let p = counter;
            counter += 1;
            p
        });
        out.insert(c.tables[0], pack);
    }
    out
}

/// The pre-refactor K-interleaving: a full clone of the spec, affinity via
/// a per-chain linear scan over the modules (quadratic overall), groups
/// split by accumulated volume. Kept verbatim as the oracle the in-place
/// inverted-index implementation must reproduce chain for chain.
fn k_interleaving_reference(spec: &WdlSpec, n_groups: usize) -> WdlSpec {
    assert!(n_groups >= 1);
    let mut out = spec.clone();
    let affinity = |c: &picasso_graph::EmbeddingChain| -> usize {
        spec.modules
            .iter()
            .position(|m| m.input_fields.iter().any(|f| c.fields.contains(f)))
            .unwrap_or(usize::MAX)
    };
    let mut order: Vec<usize> = (0..spec.chains.len())
        .filter(|&i| !spec.chains[i].interleave_excluded)
        .collect();
    order.sort_by_key(|&i| (affinity(&spec.chains[i]), i));
    let total_bytes: f64 = order
        .iter()
        .map(|&i| spec.chains[i].embedding_bytes_per_instance())
        .sum();
    let per_group = total_bytes / n_groups as f64;
    let mut group = 0u32;
    let mut acc = 0.0;
    for &i in &order {
        out.chains[i].group = group;
        acc += out.chains[i].embedding_bytes_per_instance();
        if acc >= per_group * (group + 1) as f64 && (group as usize) < n_groups - 1 {
            group += 1;
        }
    }
    for c in out.chains.iter_mut().filter(|c| c.interleave_excluded) {
        c.group = 0;
    }
    out
}

/// The refactored pass reproduces the historical group assignment exactly
/// on every graph preset of the bench suite's model zoo.
#[test]
fn k_interleaving_matches_reference_on_model_presets() {
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    let datasets = [DatasetSpec::criteo(), DatasetSpec::product2()];
    for data in &datasets {
        for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::Dlrm] {
            let mut spec = kind.build(data);
            // Exclude a couple of chains so the group-0 forcing is covered.
            if spec.chains.len() > 3 {
                spec.chains[1].interleave_excluded = true;
                spec.chains[3].interleave_excluded = true;
            }
            for n_groups in 1..=6 {
                let got = k_interleaving::apply(&spec, n_groups);
                let want = k_interleaving_reference(&spec, n_groups);
                let groups = |s: &WdlSpec| s.chains.iter().map(|c| c.group).collect::<Vec<u32>>();
                assert_eq!(
                    groups(&got),
                    groups(&want),
                    "{kind:?}/{} with {n_groups} groups",
                    spec.name
                );
            }
        }
    }
}

proptest! {
    /// The in-place inverted-index K-interleaving assigns exactly the same
    /// group to every chain as the historical clone-and-scan pass, for any
    /// spec, group count, and exclusion pattern.
    #[test]
    fn k_interleaving_matches_reference(
        spec in spec_strategy(),
        n_groups in 1usize..8,
        excl_seed in 0u64..1024,
    ) {
        let mut spec = spec;
        for (i, c) in spec.chains.iter_mut().enumerate() {
            c.interleave_excluded = (excl_seed >> (i % 10)) & 1 == 1;
        }
        let got = k_interleaving::apply(&spec, n_groups);
        let want = k_interleaving_reference(&spec, n_groups);
        for (i, (a, b)) in got.chains.iter().zip(&want.chains).enumerate() {
            prop_assert_eq!(a.group, b.group, "chain {} diverged", i);
        }
    }

    /// D-packing preserves fields, ID volume, and embedding bytes exactly.
    #[test]
    fn d_packing_conserves_volume(spec in spec_strategy(), shards in 1usize..4) {
        let assign = assignment_for(&spec, shards);
        let packed = d_packing::apply(&spec, &assign);
        packed.validate().unwrap();
        let fields = |s: &WdlSpec| {
            let mut v: Vec<u32> = s.chains.iter().flat_map(|c| c.fields.clone()).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(fields(&spec), fields(&packed));
        let vol = |s: &WdlSpec| s.embedding_bytes_per_instance();
        prop_assert!((vol(&spec) - vol(&packed)).abs() < 1e-9);
        let ids = |s: &WdlSpec| s.chains.iter().map(|c| c.ids_per_instance).sum::<f64>();
        prop_assert!((ids(&spec) - ids(&packed)).abs() < 1e-9);
        prop_assert!(packed.chains.len() <= spec.chains.len());
    }

    /// D-packing + K-packing never increase the operation count, and the
    /// reduction grows with consolidation.
    #[test]
    fn packing_monotonically_reduces_ops(spec in spec_strategy()) {
        let base_ops = graph_stats(&spec).total_ops;
        let coarse = k_packing::apply(&d_packing::apply(&spec, &assignment_for(&spec, 1)));
        let fine = k_packing::apply(&d_packing::apply(&spec, &assignment_for(&spec, 3)));
        let coarse_ops = graph_stats(&coarse).total_ops;
        let fine_ops = graph_stats(&fine).total_ops;
        prop_assert!(coarse_ops <= base_ops);
        prop_assert!(fine_ops <= base_ops);
        prop_assert!(coarse_ops <= fine_ops, "fewer packs => fewer ops");
    }

    /// K-interleaving assigns every chain a group < n_groups and leaves
    /// all volume fields untouched.
    #[test]
    fn k_interleaving_only_touches_groups(spec in spec_strategy(), n_groups in 1usize..8) {
        let out = k_interleaving::apply(&spec, n_groups);
        prop_assert!(out.group_count() <= n_groups);
        for (a, b) in spec.chains.iter().zip(&out.chains) {
            prop_assert_eq!(&a.fields, &b.fields);
            prop_assert_eq!(a.ids_per_instance, b.ids_per_instance);
            prop_assert_eq!(a.unique_ratio, b.unique_ratio);
            prop_assert!((b.group as usize) < n_groups);
        }
        out.validate().unwrap();
    }

    /// Group ids are dense: every group below group_count is nonempty.
    #[test]
    fn k_interleaving_groups_are_dense(spec in spec_strategy(), n_groups in 1usize..8) {
        let out = k_interleaving::apply(&spec, n_groups);
        let gc = out.group_count();
        for g in 0..gc {
            prop_assert!(
                out.chains.iter().any(|c| c.group as usize == g),
                "group {g} of {gc} is empty"
            );
        }
    }

    /// Eq. 2 and Eq. 3 are monotone in their bounds.
    #[test]
    fn capacity_formulas_are_monotone(bound in 1.0f64..1e12, cost in 1.0f64..1e6) {
        let base = d_interleaving::eq2_micro_batch(&[(bound, cost)]);
        let looser = d_interleaving::eq2_micro_batch(&[(bound * 2.0, cost)]);
        prop_assert!(looser >= base);
        let cap = k_interleaving::eq3_capacity(&[(bound, cost)]);
        let tighter = k_interleaving::eq3_capacity(&[(bound, cost * 2.0)]);
        prop_assert!(tighter <= cap);
    }
}
