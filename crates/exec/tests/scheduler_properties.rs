//! Property tests of the execution engine: scheduling invariants that must
//! hold for any model shape, strategy, and cluster size.

use picasso_exec::{simulate, SimConfig, Strategy as TrainStrategy};
use picasso_graph::{EmbeddingChain, InteractionModule, Layer, MlpSpec, ModuleKind, WdlSpec};
use picasso_sim::MachineSpec;
use proptest::prelude::*;

fn small_spec_strategy() -> impl Strategy<Value = WdlSpec> {
    (1usize..12, 1usize..4, 1usize..4).prop_map(|(n_tables, n_modules, micro)| {
        let chains: Vec<EmbeddingChain> = (0..n_tables)
            .map(|t| {
                let mut c = EmbeddingChain::for_table(t, 8, vec![t as u32], 1.0 + (t % 3) as f64);
                c.unique_ratio = 0.5;
                c.group = (t % 2) as u32;
                c
            })
            .collect();
        let modules: Vec<InteractionModule> = (0..n_modules)
            .map(|m| InteractionModule {
                kind: ModuleKind::DnnTower,
                input_fields: (0..n_tables as u32)
                    .filter(|f| *f as usize % n_modules == m)
                    .collect(),
                flops_per_instance: 1e4,
                bytes_per_instance: 64.0,
                params: 1e3,
                output_width: 16,
                micro_ops_forward: 12,
            })
            .collect();
        WdlSpec {
            name: "prop".into(),
            io_bytes_per_instance: 100.0,
            chains,
            modules,
            mlp: MlpSpec::new(16, vec![8, 1]),
            micro_batches: micro,
            interleave_from: Layer::Embedding,
            group_deps: Vec::new(),
        }
    })
}

fn strategy_from(idx: usize) -> TrainStrategy {
    match idx % 5 {
        0 => TrainStrategy::Hybrid,
        1 => TrainStrategy::ModelParallel,
        2 => TrainStrategy::DataParallel,
        3 => TrainStrategy::PsAsync { servers: 1 },
        _ => TrainStrategy::PsSync { servers: 1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every (spec, strategy, cluster) combination lowers to an acyclic
    /// graph that completes, with positive throughput.
    #[test]
    fn every_combination_simulates(
        spec in small_spec_strategy(),
        strat_idx in 0usize..5,
        machines in 1usize..4,
    ) {
        let cfg = SimConfig {
            batch_per_executor: 512,
            iterations: 2,
            machines,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let out = simulate(&spec, strategy_from(strat_idx), &cfg).unwrap();
        prop_assert!(out.result.makespan.as_secs_f64() > 0.0);
        prop_assert!(out.ips_per_node().is_finite() && out.ips_per_node() > 0.0);
        prop_assert_eq!(out.executors, machines);
    }

    /// More iterations cannot reduce total simulated time, and per-iteration
    /// time stays roughly stable (steady-state pipeline).
    #[test]
    fn iterations_scale_linearly(spec in small_spec_strategy()) {
        let mk = |iters: usize| SimConfig {
            batch_per_executor: 512,
            iterations: iters,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let two = simulate(&spec, TrainStrategy::Hybrid, &mk(2)).unwrap();
        let six = simulate(&spec, TrainStrategy::Hybrid, &mk(6)).unwrap();
        prop_assert!(six.result.makespan >= two.result.makespan);
        let ratio = six.secs_per_iteration() / two.secs_per_iteration();
        prop_assert!(
            (0.5..=1.5).contains(&ratio),
            "per-iteration time should be stable, ratio {ratio}"
        );
    }

    /// Larger batches cannot lower per-iteration throughput below a smaller
    /// batch's (work scales, overheads amortize).
    #[test]
    fn bigger_batches_amortize_overheads(spec in small_spec_strategy()) {
        let mk = |batch: usize| SimConfig {
            batch_per_executor: batch,
            iterations: 2,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let small = simulate(&spec, TrainStrategy::Hybrid, &mk(256)).unwrap();
        let large = simulate(&spec, TrainStrategy::Hybrid, &mk(4096)).unwrap();
        prop_assert!(
            large.ips_per_node() >= small.ips_per_node() * 0.9,
            "batch 4096 {} vs 256 {}",
            large.ips_per_node(),
            small.ips_per_node()
        );
    }

    /// The async strategy is never materially slower than its synchronous
    /// twin. A 1% tolerance absorbs Graham-style scheduling anomalies:
    /// dropping the barrier changes greedy resource-arbitration order, which
    /// for rare shapes delays the very last task slightly.
    #[test]
    fn async_never_slower_than_sync(spec in small_spec_strategy(), machines in 1usize..4) {
        let cfg = SimConfig {
            batch_per_executor: 512,
            iterations: 3,
            machines,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let sync = simulate(&spec, TrainStrategy::PsSync { servers: 1 }, &cfg).unwrap();
        let asyn = simulate(&spec, TrainStrategy::PsAsync { servers: 1 }, &cfg).unwrap();
        let sync_secs = sync.result.makespan.as_secs_f64();
        let asyn_secs = asyn.result.makespan.as_secs_f64();
        prop_assert!(
            asyn_secs <= sync_secs * 1.01,
            "async {asyn_secs} vs sync {sync_secs}"
        );
    }
}
