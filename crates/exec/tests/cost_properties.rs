//! Property tests of the stage-cost planners.

use picasso_exec::costs::{chain_backward, chain_forward, PlanContext, ResTarget};
use picasso_exec::Strategy as TrainStrategy;
use picasso_graph::EmbeddingChain;
use proptest::prelude::*;

fn chain_strategy() -> impl Strategy<Value = EmbeddingChain> {
    (
        1usize..256,
        1.0f64..64.0,
        0.05f64..1.0,
        0.0f64..1.0,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(dim, ids, unique, hit, fuse_up, fuse_ss)| {
            let mut c = EmbeddingChain::for_table(0, dim, vec![0], ids);
            c.unique_ratio = unique;
            c.cache_hit_ratio = hit;
            c.fused_unique_partition = fuse_up;
            c.fused_shuffle_stitch = fuse_ss;
            c
        })
}

fn ctx(n: usize) -> PlanContext {
    PlanContext::new(n, 1, false, TrainStrategy::Hybrid)
}

proptest! {
    /// All stage work is finite, non-negative, and scales linearly with the
    /// batch size.
    #[test]
    fn work_scales_linearly_with_batch(chain in chain_strategy(), n in 1usize..16) {
        let (one, _) = chain_forward(&chain, 1000, &ctx(n));
        let (two, _) = chain_forward(&chain, 2000, &ctx(n));
        prop_assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            prop_assert!(a.work.is_finite() && a.work >= 0.0);
            prop_assert!(
                (b.work - 2.0 * a.work).abs() <= a.work * 1e-6 + 1e-6,
                "{:?}: {} vs {}", a.kind, a.work, b.work
            );
        }
    }

    /// A single executor never produces network traffic, forward or
    /// backward.
    #[test]
    fn single_executor_is_network_silent(chain in chain_strategy()) {
        let (fwd, _) = chain_forward(&chain, 512, &ctx(1));
        let bwd = chain_backward(&chain, 512, &ctx(1));
        for st in fwd.iter().chain(&bwd) {
            if st.target == ResTarget::Nic || st.target == ResTarget::NvLink {
                prop_assert_eq!(st.work, 0.0, "{:?} moved bytes with n=1", st.kind);
            }
        }
    }

    /// Fusion reduces total launches, never total byte volume by more than
    /// the pass-combination saving.
    #[test]
    fn fusion_cuts_launches_not_volume(chain in chain_strategy(), n in 2usize..8) {
        let mut unfused = chain.clone();
        unfused.fused_unique_partition = false;
        unfused.fused_shuffle_stitch = false;
        let mut fused = chain.clone();
        fused.fused_unique_partition = true;
        fused.fused_shuffle_stitch = true;
        let (u, _) = chain_forward(&unfused, 512, &ctx(n));
        let (f, _) = chain_forward(&fused, 512, &ctx(n));
        let launches = |v: &[picasso_exec::costs::StageTask]| -> u64 {
            v.iter().map(|s| s.launches as u64).sum()
        };
        prop_assert!(launches(&f) < launches(&u));
        // Communication bytes are identical: fusion does not drop data.
        let comm = |v: &[picasso_exec::costs::StageTask]| -> f64 {
            v.iter()
                .filter(|s| s.target == ResTarget::Nic || s.target == ResTarget::NvLink)
                .map(|s| s.work)
                .sum()
        };
        prop_assert!((comm(&f) - comm(&u)).abs() < 1e-6);
    }

    /// Higher cache hit ratios monotonically reduce PCIe traffic.
    #[test]
    fn cache_hits_reduce_pcie(chain in chain_strategy(), n in 1usize..8) {
        let mut cold = chain.clone();
        cold.cache_hit_ratio = 0.0;
        let mut warm = chain.clone();
        warm.cache_hit_ratio = 0.9;
        let pcie = |c: &EmbeddingChain| -> f64 {
            chain_forward(c, 512, &ctx(n))
                .0
                .iter()
                .filter(|s| s.target == ResTarget::Pcie)
                .map(|s| s.work)
                .sum()
        };
        prop_assert!(pcie(&warm) <= pcie(&cold) + 1e-9);
        prop_assert!(pcie(&warm) < pcie(&cold) * 0.2 + 1e-6);
    }

    /// More executors strictly increase the remote share (up to the
    /// asymptote) and never change local memory volumes.
    #[test]
    fn remote_share_grows_with_cluster(chain in chain_strategy()) {
        let comm = |n: usize| -> f64 {
            chain_forward(&chain, 512, &ctx(n))
                .0
                .iter()
                .filter(|s| s.target == ResTarget::Nic)
                .map(|s| s.work)
                .sum()
        };
        let c2 = comm(2);
        let c8 = comm(8);
        prop_assert!(c8 >= c2, "remote share must grow: {c2} -> {c8}");
        prop_assert!(c8 <= c2 * 2.0, "bounded by the (n-1)/n asymptote");
    }
}
