//! Training-framework presets.
//!
//! The paper compares PICASSO against TensorFlow-PS, PyTorch (hybrid with
//! AllToAll), Horovod (DDP AllReduce), and the in-house XDL (synchronous
//! PS). Each preset is a distribution strategy plus the set of
//! graph-optimization passes it applies — PICASSO differs from
//! "PICASSO(Base)" only by the software-system optimizations, which is what
//! the Fig. 13 / Table IV ablation isolates.

use crate::strategy::Strategy;
use picasso_graph::PipelineConfig;
use serde::{Deserialize, Serialize};

/// Which optimizations a framework applies: a declarative, ordered pass
/// pipeline. The `Optimizations::all()` / `none()` / `without_*()`
/// constructors mirror the paper's ablation vocabulary; arbitrary pass
/// lists come from [`PipelineConfig::new`] or
/// [`PipelineConfig::from_names`].
pub type Optimizations = PipelineConfig;

/// A named framework preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Framework {
    /// TensorFlow 1.15 with one CPU parameter server, asynchronous.
    TfPs,
    /// PyTorch 1.8 hybrid: manual table placement + AllToAll.
    PyTorch,
    /// Horovod on PyTorch DDP: full replication + AllReduce.
    Horovod,
    /// In-house XDL: synchronous PS with a server per four workers.
    Xdl,
    /// PICASSO's hybrid strategy without software-system optimizations.
    PicassoBase,
    /// Full PICASSO.
    Picasso,
}

impl Framework {
    /// All presets, in comparison order.
    pub const ALL: [Framework; 6] = [
        Framework::TfPs,
        Framework::PyTorch,
        Framework::Horovod,
        Framework::Xdl,
        Framework::PicassoBase,
        Framework::Picasso,
    ];

    /// The four frameworks of the public benchmark (Figs. 10-12, Tab. III).
    pub const BENCHMARK: [Framework; 4] = [
        Framework::Picasso,
        Framework::PyTorch,
        Framework::TfPs,
        Framework::Horovod,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::TfPs => "TF-PS",
            Framework::PyTorch => "PyTorch",
            Framework::Horovod => "Horovod",
            Framework::Xdl => "XDL",
            Framework::PicassoBase => "PICASSO(Base)",
            Framework::Picasso => "PICASSO",
        }
    }

    /// The distribution strategy for a cluster of `machines` worker nodes.
    pub fn strategy(self, machines: usize) -> Strategy {
        match self {
            Framework::TfPs => Strategy::PsAsync { servers: 1 },
            Framework::Xdl => Strategy::PsSync {
                servers: machines.div_ceil(4),
            },
            Framework::PyTorch => Strategy::ModelParallel,
            Framework::Horovod => Strategy::DataParallel,
            Framework::PicassoBase | Framework::Picasso => Strategy::Hybrid,
        }
    }

    /// The optimization pipeline this preset applies.
    pub fn optimizations(self) -> Optimizations {
        match self {
            Framework::Picasso => Optimizations::all(),
            _ => Optimizations::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_picasso_optimizes() {
        for f in Framework::ALL {
            let o = f.optimizations();
            if f == Framework::Picasso {
                assert_eq!(o, Optimizations::all());
            } else {
                assert_eq!(o, Optimizations::none(), "{}", f.name());
            }
        }
    }

    #[test]
    fn strategies_match_paper_setup() {
        assert_eq!(
            Framework::TfPs.strategy(16),
            Strategy::PsAsync { servers: 1 }
        );
        assert_eq!(Framework::Xdl.strategy(16), Strategy::PsSync { servers: 4 });
        assert_eq!(Framework::Horovod.strategy(4), Strategy::DataParallel);
        assert_eq!(Framework::PyTorch.strategy(4), Strategy::ModelParallel);
        assert_eq!(Framework::Picasso.strategy(4), Strategy::Hybrid);
    }

    #[test]
    fn ablation_configs_differ_from_full() {
        use picasso_graph::PassId;
        let all = Optimizations::all();
        assert_ne!(Optimizations::without_packing(), all);
        assert_ne!(Optimizations::without_interleaving(), all);
        assert_ne!(Optimizations::without_caching(), all);
        assert!(!Optimizations::without_packing().enables(PassId::DPacking));
        assert!(Optimizations::without_packing().enables(PassId::Caching));
        assert!(!Optimizations::without_interleaving().enables(PassId::DInterleaving));
        assert!(!Optimizations::without_caching().enables(PassId::Caching));
        assert!(Optimizations::without_caching().enables(PassId::DPacking));
    }
}
