//! Training-framework presets.
//!
//! The paper compares PICASSO against TensorFlow-PS, PyTorch (hybrid with
//! AllToAll), Horovod (DDP AllReduce), and the in-house XDL (synchronous
//! PS). Each preset is a distribution strategy plus the set of
//! graph-optimization passes it applies — PICASSO differs from
//! "PICASSO(Base)" only by the software-system optimizations, which is what
//! the Fig. 13 / Table IV ablation isolates.

use crate::strategy::Strategy;
use serde::{Deserialize, Serialize};

/// Which optimizations a framework applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Optimizations {
    /// D-Packing (merge per-table chains into packed operations).
    pub packing: bool,
    /// K-Packing (same-resource kernel fusion).
    pub kernel_packing: bool,
    /// K-Interleaving (grouped, staggered packed operations).
    pub k_interleaving: bool,
    /// D-Interleaving (micro-batch pipelining).
    pub d_interleaving: bool,
    /// HybridHash caching.
    pub caching: bool,
}

impl Optimizations {
    /// Everything off (baselines and PICASSO(Base)).
    pub const NONE: Optimizations = Optimizations {
        packing: false,
        kernel_packing: false,
        k_interleaving: false,
        d_interleaving: false,
        caching: false,
    };

    /// Everything on (full PICASSO).
    pub const ALL: Optimizations = Optimizations {
        packing: true,
        kernel_packing: true,
        k_interleaving: true,
        d_interleaving: true,
        caching: true,
    };

    /// Full PICASSO minus packing (Table IV "w/o Packing").
    pub fn without_packing() -> Optimizations {
        Optimizations {
            packing: false,
            kernel_packing: false,
            ..Optimizations::ALL
        }
    }

    /// Full PICASSO minus interleaving (Table IV "w/o Interleaving").
    pub fn without_interleaving() -> Optimizations {
        Optimizations {
            k_interleaving: false,
            d_interleaving: false,
            ..Optimizations::ALL
        }
    }

    /// Full PICASSO minus caching (Table IV "w/o Caching").
    pub fn without_caching() -> Optimizations {
        Optimizations {
            caching: false,
            ..Optimizations::ALL
        }
    }
}

/// A named framework preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Framework {
    /// TensorFlow 1.15 with one CPU parameter server, asynchronous.
    TfPs,
    /// PyTorch 1.8 hybrid: manual table placement + AllToAll.
    PyTorch,
    /// Horovod on PyTorch DDP: full replication + AllReduce.
    Horovod,
    /// In-house XDL: synchronous PS with a server per four workers.
    Xdl,
    /// PICASSO's hybrid strategy without software-system optimizations.
    PicassoBase,
    /// Full PICASSO.
    Picasso,
}

impl Framework {
    /// All presets, in comparison order.
    pub const ALL: [Framework; 6] = [
        Framework::TfPs,
        Framework::PyTorch,
        Framework::Horovod,
        Framework::Xdl,
        Framework::PicassoBase,
        Framework::Picasso,
    ];

    /// The four frameworks of the public benchmark (Figs. 10-12, Tab. III).
    pub const BENCHMARK: [Framework; 4] = [
        Framework::Picasso,
        Framework::PyTorch,
        Framework::TfPs,
        Framework::Horovod,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::TfPs => "TF-PS",
            Framework::PyTorch => "PyTorch",
            Framework::Horovod => "Horovod",
            Framework::Xdl => "XDL",
            Framework::PicassoBase => "PICASSO(Base)",
            Framework::Picasso => "PICASSO",
        }
    }

    /// The distribution strategy for a cluster of `machines` worker nodes.
    pub fn strategy(self, machines: usize) -> Strategy {
        match self {
            Framework::TfPs => Strategy::PsAsync { servers: 1 },
            Framework::Xdl => Strategy::PsSync {
                servers: machines.div_ceil(4),
            },
            Framework::PyTorch => Strategy::ModelParallel,
            Framework::Horovod => Strategy::DataParallel,
            Framework::PicassoBase | Framework::Picasso => Strategy::Hybrid,
        }
    }

    /// The optimizations this preset applies.
    pub fn optimizations(self) -> Optimizations {
        match self {
            Framework::Picasso => Optimizations::ALL,
            _ => Optimizations::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_picasso_optimizes() {
        for f in Framework::ALL {
            let o = f.optimizations();
            if f == Framework::Picasso {
                assert_eq!(o, Optimizations::ALL);
            } else {
                assert_eq!(o, Optimizations::NONE, "{}", f.name());
            }
        }
    }

    #[test]
    fn strategies_match_paper_setup() {
        assert_eq!(
            Framework::TfPs.strategy(16),
            Strategy::PsAsync { servers: 1 }
        );
        assert_eq!(Framework::Xdl.strategy(16), Strategy::PsSync { servers: 4 });
        assert_eq!(Framework::Horovod.strategy(4), Strategy::DataParallel);
        assert_eq!(Framework::PyTorch.strategy(4), Strategy::ModelParallel);
        assert_eq!(Framework::Picasso.strategy(4), Strategy::Hybrid);
    }

    #[test]
    fn ablation_configs_differ_from_full() {
        let all = Optimizations::ALL;
        assert_ne!(Optimizations::without_packing(), all);
        assert_ne!(Optimizations::without_interleaving(), all);
        assert_ne!(Optimizations::without_caching(), all);
        assert!(!Optimizations::without_packing().packing);
        assert!(Optimizations::without_packing().caching);
        assert!(!Optimizations::without_interleaving().d_interleaving);
        assert!(!Optimizations::without_caching().caching);
        assert!(Optimizations::without_caching().packing);
    }
}
