//! Cost models of the collective-communication primitives.
//!
//! These return per-executor byte volumes; the scheduler turns them into
//! simulator tasks on the right interconnect resources. Formulas follow the
//! standard algorithm analyses (ring AllReduce, pairwise AllToAllv) used by
//! NCCL-class libraries.

/// Bytes each worker moves through its NIC for a ring AllReduce of `bytes`
/// of gradient data across `n` participants: `2 * (n-1)/n * bytes`
/// (reduce-scatter + all-gather).
pub fn allreduce_bytes_per_worker(bytes: f64, n: usize) -> f64 {
    assert!(n >= 1);
    if n == 1 {
        return 0.0;
    }
    2.0 * (n as f64 - 1.0) / n as f64 * bytes
}

/// Bytes each worker sends remotely in an AllToAllv exchange where it owns
/// `1/n` of the data and needs `bytes` of activations per iteration:
/// `(n-1)/n * bytes` leave the device.
pub fn alltoall_remote_bytes(bytes: f64, n: usize) -> f64 {
    assert!(n >= 1);
    (n as f64 - 1.0) / n as f64 * bytes
}

/// Splits remote traffic between the intra-node fabric (NVLink) and the NIC
/// for a cluster with `per_node` executors per machine and `n` executors in
/// total. Returns `(nvlink_bytes, nic_bytes)`.
pub fn split_intra_inter(remote_bytes: f64, n: usize, per_node: usize) -> (f64, f64) {
    assert!(n >= 1 && per_node >= 1);
    if n <= 1 {
        return (0.0, 0.0);
    }
    // Of the n-1 peers, per_node-1 are reachable via NVLink.
    let intra = (per_node.min(n) as f64 - 1.0) / (n as f64 - 1.0);
    (remote_bytes * intra, remote_bytes * (1.0 - intra))
}

/// Bytes a parameter-server node serves per iteration when `n_workers`
/// each pull `bytes_per_worker`, spread over `n_servers` (the server-side
/// NIC load that congests PS training).
pub fn ps_server_bytes(bytes_per_worker: f64, n_workers: usize, n_servers: usize) -> f64 {
    assert!(n_servers >= 1);
    bytes_per_worker * n_workers as f64 / n_servers as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_follows_ring_formula() {
        assert_eq!(allreduce_bytes_per_worker(1000.0, 1), 0.0);
        assert_eq!(allreduce_bytes_per_worker(1000.0, 2), 1000.0);
        let b4 = allreduce_bytes_per_worker(1000.0, 4);
        assert!((b4 - 1500.0).abs() < 1e-9);
        // Asymptotically approaches 2x the payload.
        assert!(allreduce_bytes_per_worker(1000.0, 128) < 2000.0);
    }

    #[test]
    fn alltoall_keeps_local_share() {
        assert_eq!(alltoall_remote_bytes(800.0, 1), 0.0);
        assert_eq!(alltoall_remote_bytes(800.0, 4), 600.0);
    }

    #[test]
    fn intra_inter_split_respects_topology() {
        // 16 executors, 8 per node: 7 of 15 peers are local.
        let (nv, nic) = split_intra_inter(1500.0, 16, 8);
        assert!((nv - 1500.0 * 7.0 / 15.0).abs() < 1e-9);
        assert!((nv + nic - 1500.0).abs() < 1e-9);
        // Single-GPU nodes: everything crosses the network.
        let (nv, nic) = split_intra_inter(1000.0, 4, 1);
        assert_eq!(nv, 0.0);
        assert_eq!(nic, 1000.0);
        // Single executor: no remote traffic at all.
        assert_eq!(split_intra_inter(1000.0, 1, 8), (0.0, 0.0));
    }

    #[test]
    fn ps_load_concentrates_on_few_servers() {
        // 8 workers pulling 1 MB each from one server: 8 MB through one NIC.
        assert_eq!(ps_server_bytes(1e6, 8, 1), 8e6);
        assert_eq!(ps_server_bytes(1e6, 8, 4), 2e6);
    }
}
