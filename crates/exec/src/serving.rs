//! Forward-only serving lowering: the inference half of the train→serve
//! unification.
//!
//! Training and serving share the spec surface, the optimization-pass
//! pipeline, and the stage-graph builder; serving simply stops lowering at
//! the MLP forward — no backward stages, no optimizer apply, no collective
//! gradient exchange. The serving graph carries the same mechanically
//! derived effect sets as the training graph, so the PR-9 race analyzer
//! covers it unchanged, and two serving-specific run rules
//! (`run.backward-stage-in-serving`, `run.serve-no-admission`) guard the
//! properties that make a graph servable: it must be free of model-state
//! mutation, and its request queue must be bounded.
//!
//! The per-batch service time is *analytic*, not simulated per request: a
//! sequential walk over the forward stage costs against the machine's
//! resource rates and launch overheads. Serving latency is dominated by
//! queueing and batching policy, which the `picasso-serve` event loop
//! models exactly; the analytic service time keeps a million-request
//! sweep cheap while staying monotone in batch size with sublinear
//! per-request cost (launch overheads amortize — the same effect packing
//! exploits in training).

use std::sync::Arc;

use crate::costs::{self, PlanContext, ResTarget};
use crate::lint::forward_graph;
use crate::scheduler::SimConfig;
use crate::strategy::Strategy;
use crate::trainer::{prepare, TrainError, TrainerOptions};
use picasso_data::DatasetSpec;
use picasso_graph::{OpKind, PipelineConfig, WdlSpec};
use picasso_lint::{AccessMode, Diagnostic, ResourceKind, Severity, Span, StageGraph};
use picasso_models::ModelKind;
use picasso_sim::MachineSpec;

/// Everything the serving layer needs from the shared preparation path:
/// the pass-optimized spec (serving pipeline: packing + caching, no
/// interleaving), the simulation shape, the analytic cache-hit ratio, and
/// the static-analysis findings from all surfaces including the serving
/// graph itself.
#[derive(Debug)]
pub struct ServingPlan {
    /// The spec after the serving pass pipeline.
    pub spec: WdlSpec,
    /// Parallelization strategy the forward lowering was planned for.
    pub strategy: Strategy,
    /// Machine/cluster shape; `batch_per_executor` is the *maximum*
    /// serving batch the plan was sized for.
    pub cfg: SimConfig,
    /// Analytic HybridHash hit ratio at the planned lookup granularity.
    pub hit: f64,
    /// Static-analysis findings (spec + plan + serving-graph surfaces).
    pub diagnostics: Vec<Diagnostic>,
}

/// Plans a forward-only serving deployment of `model`: runs the serving
/// pass pipeline (packing + caching), sizes batches, derives analytic
/// dedup/hit ratios, lowers the forward-only graph, and runs the stage
/// rules plus the serving-specific run rules over it.
///
/// `queue_capacity` is the admission-control bound of the deployment this
/// plan feeds; `None` means unbounded and draws the
/// `run.serve-no-admission` warning.
pub fn prepare_serving(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    strategy: Strategy,
    opts: &TrainerOptions,
    queue_capacity: Option<usize>,
) -> Result<ServingPlan, TrainError> {
    let p = prepare(model, data, strategy, PipelineConfig::serving(), opts)?;
    // Keep the shared spec/plan surface findings, but replace the training
    // stage-graph findings with the serving graph's own: drop rules scoped
    // to stages (they were computed over the graph with a backward half)
    // and re-analyze the forward-only lowering.
    let mut diagnostics: Vec<Diagnostic> = p
        .diagnostics
        .into_iter()
        .filter(|d| !matches!(d.span, Span::Stage(_) | Span::Run(_)))
        .collect();
    let g = serving_stage_graph(&p.spec, strategy, &p.cfg);
    diagnostics.extend(g.analyze());
    diagnostics.extend(serving_lints(&g, queue_capacity));
    Ok(ServingPlan {
        spec: p.spec,
        strategy,
        cfg: p.cfg,
        hit: p.hit,
        diagnostics,
    })
}

/// Lowers `spec` into the forward-only serving stage graph (one executor,
/// one batch): data load, grouped embedding forward with declared group
/// dependencies, interaction modules, MLP forward — and nothing after it.
/// Node order matches the forward prefix of the training graph exactly.
pub fn serving_stage_graph(spec: &WdlSpec, strategy: Strategy, cfg: &SimConfig) -> StageGraph {
    forward_graph(spec, strategy, cfg).g
}

fn rate_of(target: ResTarget, m: &MachineSpec) -> f64 {
    match target {
        ResTarget::GpuSm => m.gpu.sm_flops,
        ResTarget::GpuMem => m.gpu.mem_bw,
        ResTarget::Pcie => m.pcie_bw,
        ResTarget::Dram | ResTarget::ServerDram => m.dram_bw,
        ResTarget::Cpu => m.cpu_flops,
        ResTarget::Nic | ResTarget::ServerNic => m.nic_bw,
        ResTarget::NvLink => m.nvlink_bw.unwrap_or(m.nic_bw),
    }
}

fn launch_secs(target: ResTarget, m: &MachineSpec) -> f64 {
    let o = &m.overheads;
    let setup = match target {
        ResTarget::GpuSm | ResTarget::GpuMem => o.gpu_kernel,
        ResTarget::Pcie => o.dma_setup,
        ResTarget::Nic | ResTarget::ServerNic | ResTarget::NvLink => o.net_msg,
        ResTarget::Dram | ResTarget::ServerDram => o.dram_op,
        ResTarget::Cpu => o.cpu_op,
    };
    (setup + o.op_dispatch).as_secs_f64()
}

/// Analytic end-to-end forward service time for one batch of `batch`
/// requests, in nanoseconds: a sequential sum over every forward stage of
/// `work / rate(target) + launches x launch_overhead(target)`.
///
/// Sequential summation (no overlap credit) makes this an upper bound and
/// keeps it deterministic and strictly monotone in `batch`; launch
/// overheads are batch-independent, so per-request cost falls as batches
/// grow — the amortization the dynamic batcher trades latency for.
pub fn forward_latency_ns(
    spec: &WdlSpec,
    strategy: Strategy,
    cfg: &SimConfig,
    batch: usize,
) -> u64 {
    let batch = batch.max(1);
    let per_node = cfg.machine.gpus_per_node.max(1);
    let ctx = PlanContext {
        n_exec: (cfg.machines * per_node).max(1),
        per_node,
        has_nvlink: cfg.machine.nvlink_bw.is_some(),
        strategy,
        comm_scale: if cfg.quantized_comm { 0.5 } else { 1.0 },
    };
    let m = &cfg.machine;
    let mut secs = 0.0;
    // Request ingress (the serving analogue of the data-load stage).
    secs += batch as f64 * spec.io_bytes_per_instance / costs::NET_EFF / m.nic_bw
        + OpKind::DataLoad.micro_ops() as f64 * launch_secs(ResTarget::Nic, m);
    let mut add = |work: f64, target: ResTarget, launches: u32| {
        secs += work / rate_of(target, m) + launches as f64 * launch_secs(target, m);
    };
    for chain in &spec.chains {
        let (stages, _) = costs::chain_forward(chain, batch, &ctx);
        for st in &stages {
            add(st.work, st.target, st.launches);
        }
    }
    for module in &spec.modules {
        let st = costs::module_forward(module, batch);
        add(st.work, st.target, st.launches);
    }
    let st = costs::mlp_forward(&spec.mlp, batch);
    add(st.work, st.target, st.launches);
    (secs * 1e9).round() as u64
}

/// Resource kinds whose mutation marks a stage as a *training* stage: all
/// persistent model state. A serving graph may read any of these (and
/// reduce into private scratch), but writing them means a gradient,
/// optimizer, or checkpoint stage leaked into the forward-only lowering.
const MODEL_STATE: [ResourceKind; 5] = [
    ResourceKind::EmbeddingShard,
    ResourceKind::CacheHot,
    ResourceKind::DenseParams,
    ResourceKind::OptimizerState,
    ResourceKind::CkptDirty,
];

/// The serving-specific run rules over an already-lowered graph:
///
/// * `run.backward-stage-in-serving` (error) — a stage mutates model
///   state (writes or reduce-adds into embedding shards, hot cache rows,
///   dense parameters, optimizer state, or checkpoint dirty sets), which
///   only backward/optimizer stages do;
/// * `run.serve-no-admission` (warning) — the deployment's request queue
///   is unbounded (`queue_capacity == None`), so a traffic burst grows the
///   queue (and tail latency) without limit instead of shedding.
pub fn serving_lints(g: &StageGraph, queue_capacity: Option<usize>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for node in &g.nodes {
        let mutated: Vec<String> = node
            .effects
            .effects
            .iter()
            .filter(|e| {
                matches!(e.mode, AccessMode::Write | AccessMode::ReduceAdd)
                    && MODEL_STATE.contains(&e.resource.kind)
            })
            .map(|e| e.resource.to_string())
            .collect();
        if !mutated.is_empty() {
            out.push(
                Diagnostic::new(
                    "run.backward-stage-in-serving",
                    Severity::Error,
                    Span::Stage(node.label.clone()),
                    format!(
                        "stage '{}' ({}) mutates model state ({}) — serving graphs are \
                         forward-only and must not contain gradient, optimizer, or \
                         checkpoint stages",
                        node.label,
                        node.kind,
                        mutated.join(", "),
                    ),
                )
                .with_hint(
                    "lower the spec through `serving_stage_graph` (or prune the backward \
                     half) instead of reusing a training lowering",
                ),
            );
        }
    }
    if queue_capacity.is_none() {
        out.push(
            Diagnostic::new(
                "run.serve-no-admission",
                Severity::Warn,
                Span::Run("queue-capacity".into()),
                "the serving queue is unbounded: under sustained overload every queued \
                 request's latency grows without limit and no load is shed",
            )
            .with_hint(
                "set a queue capacity (admission control) so overload sheds \
                 deterministically instead of stretching tail latency",
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::stage_graph;
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn cfg() -> SimConfig {
        SimConfig {
            batch_per_executor: 256,
            iterations: 1,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        }
    }

    #[test]
    fn serving_graph_is_the_forward_prefix_of_the_training_graph() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::WideDeep.build(&data);
        let serve = serving_stage_graph(&spec, Strategy::Hybrid, &cfg());
        let train = stage_graph(&spec, Strategy::Hybrid, &cfg());
        assert!(serve.nodes.len() < train.nodes.len());
        for (s, t) in serve.nodes.iter().zip(train.nodes.iter()) {
            assert_eq!(s.label, t.label);
        }
        // The forward prefix ends at the MLP forward; nothing after it.
        assert_eq!(serve.nodes.last().unwrap().label, "mlp/fwd");
        assert!(serve
            .nodes
            .iter()
            .all(|n| !n.label.contains("/b") && !n.label.starts_with("sync")));
    }

    #[test]
    fn serving_graph_is_race_free_and_lint_clean() {
        let data = DatasetSpec::criteo();
        for model in [ModelKind::WideDeep, ModelKind::Dlrm] {
            let spec = model.build(&data);
            let g = serving_stage_graph(&spec, Strategy::Hybrid, &cfg());
            assert!(g.static_races().is_empty());
            assert!(g.analyze().is_empty());
            let diags = serving_lints(&g, Some(1024));
            assert!(diags.is_empty(), "{model:?}: {diags:?}");
        }
    }

    #[test]
    fn backward_stage_lint_fires_on_a_training_lowering() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let g = stage_graph(&spec, Strategy::Hybrid, &cfg());
        let diags = serving_lints(&g, Some(1024));
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "run.backward-stage-in-serving")
            .collect();
        assert!(!hits.is_empty(), "training graph must trip the rule");
        assert!(hits.iter().all(|d| d.severity == Severity::Error));
        // The optimizer-apply sync stage is among the flagged ones.
        assert!(hits
            .iter()
            .any(|d| matches!(&d.span, Span::Stage(l) if l.starts_with("sync"))));
    }

    #[test]
    fn unbounded_queue_warns_and_bounded_queue_does_not() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::WideDeep.build(&data);
        let g = serving_stage_graph(&spec, Strategy::Hybrid, &cfg());
        let diags = serving_lints(&g, None);
        let hit = diags
            .iter()
            .find(|d| d.rule == "run.serve-no-admission")
            .expect("unbounded queue must warn");
        assert_eq!(hit.severity, Severity::Warn);
        assert!(serving_lints(&g, Some(64))
            .iter()
            .all(|d| d.rule != "run.serve-no-admission"));
    }

    #[test]
    fn forward_latency_is_monotone_with_sublinear_per_request_cost() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::WideDeep.build(&data);
        let c = cfg();
        let l1 = forward_latency_ns(&spec, Strategy::Hybrid, &c, 1);
        let l16 = forward_latency_ns(&spec, Strategy::Hybrid, &c, 16);
        let l256 = forward_latency_ns(&spec, Strategy::Hybrid, &c, 256);
        assert!(l1 > 0);
        assert!(l1 < l16 && l16 < l256, "{l1} {l16} {l256}");
        // Launch overheads amortize: 256 requests cost far less than 256
        // single-request batches.
        assert!(l256 < 256 * l1 / 4, "{l256} vs {}", 256 * l1);
        // Deterministic.
        assert_eq!(l16, forward_latency_ns(&spec, Strategy::Hybrid, &c, 16));
    }

    #[test]
    fn prepare_serving_produces_a_clean_plan_for_suite_models() {
        let data = DatasetSpec::criteo().shared();
        let opts = TrainerOptions {
            batch_per_executor: Some(256),
            ..Default::default()
        };
        let plan = prepare_serving(
            ModelKind::WideDeep,
            &data,
            Strategy::Hybrid,
            &opts,
            Some(512),
        )
        .expect("plan");
        assert!(plan.diagnostics.is_empty(), "{:?}", plan.diagnostics);
        assert!(plan.hit >= 0.0 && plan.hit <= 1.0);
        assert_eq!(plan.cfg.batch_per_executor, 256);
        // Serving pipeline applied: no interleaving groups.
        assert!(plan.spec.micro_batches <= 1);
        // Unbounded queue propagates the admission warning.
        let warned =
            prepare_serving(ModelKind::WideDeep, &data, Strategy::Hybrid, &opts, None).unwrap();
        assert!(warned
            .diagnostics
            .iter()
            .any(|d| d.rule == "run.serve-no-admission"));
    }
}
