//! Distributed training strategies (§II-C, §III-A).

use serde::{Deserialize, Serialize};

/// How embedding parameters are exchanged each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbeddingExchange {
    /// Pulled from / pushed to parameter-server nodes.
    ParameterServer,
    /// Partitioned across executors, exchanged via AllToAllv.
    AllToAll,
    /// Fully replicated: lookups are local, gradients AllReduced.
    Replicated,
}

/// How dense (interaction + MLP) parameters are kept in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenseSync {
    /// Pulled/pushed through parameter servers.
    ParameterServer,
    /// Ring AllReduce across executors.
    AllReduce,
}

/// A distributed training strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Asynchronous parameter server (the industry de-facto baseline):
    /// workers pull parameters, compute, and push gradients with no global
    /// barrier.
    PsAsync {
        /// Number of CPU server nodes.
        servers: usize,
    },
    /// Synchronous parameter server (in-house XDL style).
    PsSync {
        /// Number of CPU server nodes.
        servers: usize,
    },
    /// Pure data parallelism (Horovod/DDP): everything replicated,
    /// gradients — including sparse embedding gradients — AllReduced.
    DataParallel,
    /// Pure model parallelism (PyTorch + AllToAll): embedding tables
    /// manually placed across devices, activations exchanged via AllToAllv,
    /// dense parameters replicated and AllReduced.
    ModelParallel,
    /// PICASSO's hybrid (Fig. 6): embeddings model-parallel via AllToAllv,
    /// dense layers data-parallel via AllReduce.
    Hybrid,
}

impl Strategy {
    /// Parameter-server node count required (0 for serverless strategies).
    pub fn server_count(self) -> usize {
        match self {
            Strategy::PsAsync { servers } | Strategy::PsSync { servers } => servers,
            _ => 0,
        }
    }

    /// Whether workers proceed without a global iteration barrier.
    pub fn is_async(self) -> bool {
        matches!(self, Strategy::PsAsync { .. })
    }

    /// Embedding-parameter exchange mechanism.
    pub fn embedding_exchange(self) -> EmbeddingExchange {
        match self {
            Strategy::PsAsync { .. } | Strategy::PsSync { .. } => {
                EmbeddingExchange::ParameterServer
            }
            Strategy::DataParallel => EmbeddingExchange::Replicated,
            Strategy::ModelParallel | Strategy::Hybrid => EmbeddingExchange::AllToAll,
        }
    }

    /// Dense-parameter synchronization mechanism.
    pub fn dense_sync(self) -> DenseSync {
        match self {
            Strategy::PsAsync { .. } | Strategy::PsSync { .. } => DenseSync::ParameterServer,
            _ => DenseSync::AllReduce,
        }
    }

    /// Whether NVLink can be used for collective exchange (PS traffic goes
    /// through server NICs and cannot ride device interconnects; the paper
    /// notes NVLink does not work in TF-PS mode).
    pub fn uses_nvlink(self) -> bool {
        !matches!(self, Strategy::PsAsync { .. } | Strategy::PsSync { .. })
    }

    /// Load-imbalance factor on embedding exchange: manual per-table GPU
    /// placement (PyTorch MP) leaves the busiest device with more traffic
    /// than the hash-sharded layouts.
    pub fn shuffle_imbalance(self) -> f64 {
        match self {
            Strategy::ModelParallel => 1.3,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_strategies_use_servers() {
        assert_eq!(Strategy::PsAsync { servers: 2 }.server_count(), 2);
        assert_eq!(Strategy::Hybrid.server_count(), 0);
        assert!(Strategy::PsAsync { servers: 1 }.is_async());
        assert!(!Strategy::PsSync { servers: 1 }.is_async());
    }

    #[test]
    fn exchange_mechanisms_match_paper() {
        assert_eq!(
            Strategy::Hybrid.embedding_exchange(),
            EmbeddingExchange::AllToAll
        );
        assert_eq!(
            Strategy::DataParallel.embedding_exchange(),
            EmbeddingExchange::Replicated
        );
        assert_eq!(
            Strategy::PsAsync { servers: 1 }.embedding_exchange(),
            EmbeddingExchange::ParameterServer
        );
        assert_eq!(Strategy::Hybrid.dense_sync(), DenseSync::AllReduce);
        assert_eq!(
            Strategy::PsSync { servers: 4 }.dense_sync(),
            DenseSync::ParameterServer
        );
    }

    #[test]
    fn nvlink_disabled_under_ps() {
        assert!(!Strategy::PsAsync { servers: 1 }.uses_nvlink());
        assert!(Strategy::ModelParallel.uses_nvlink());
        assert!(Strategy::Hybrid.uses_nvlink());
    }

    #[test]
    fn manual_placement_is_imbalanced() {
        assert!(Strategy::ModelParallel.shuffle_imbalance() > 1.0);
        assert_eq!(Strategy::Hybrid.shuffle_imbalance(), 1.0);
    }
}
