//! Causal analysis of a finished simulation.
//!
//! Joins the scheduler's causal event log ([`crate::scheduler::CausalStage`])
//! with the
//! engine's observed timestamps to build the executed DAG, then runs the
//! [`picasso_obs::analysis`] machinery over it: critical path + slack,
//! achieved overlap per resource pair versus the pass pipeline's planned
//! D×K interleaving, and per-lane idle-gap attribution. Everything derives
//! from the immutable [`SimulationOutput`] after the run — the analysis
//! can never perturb scheduling.

use crate::scheduler::SimulationOutput;
use picasso_lint::effects::{conflicts, ConflictKind, RaceAllowlist, RaceSig};
use picasso_lint::{Diagnostic, EffectSet, LintReport, Severity, Span, StaticRace};
use picasso_obs::analysis::{DagAnalysis, DagNode, ExecutedDag, PairSpec, PlannedInterleaving};
use picasso_obs::json::Json;
use picasso_obs::metrics::{MetricKind, MetricsRegistry};
use std::collections::BTreeSet;

/// Schema version of the `picasso.analysis_report` document.
pub const ANALYSIS_REPORT_SCHEMA_VERSION: u32 = 1;

/// Achieved overlap below this fraction of the planned overlap trips
/// `run.low-overlap`.
pub const LOW_OVERLAP_FRAC: f64 = 0.5;

/// A critical-path lane idle for more than this fraction of the makespan
/// trips `run.idle-dominant-resource`.
pub const IDLE_DOMINANT_FRAC: f64 = 0.5;

/// Builds the executed DAG: causal edges from the scheduler, timestamps
/// and lane assignment from the engine trace. Launcher dispatch nodes are
/// labeled `launch:<op>` on their launcher lane.
pub fn executed_dag(out: &SimulationOutput) -> ExecutedDag {
    let nodes = out
        .causal
        .iter()
        .map(|st| {
            let rec = &out.result.records[st.task.0];
            let res = &out.result.resources[rec.resource.0];
            let op = if st.launcher {
                format!("launch:{:?}", st.kind)
            } else {
                format!("{:?}", st.kind)
            };
            DagNode {
                id: st.task.0 as u64,
                op,
                lane: res.spec.name.clone(),
                res_kind: res.spec.kind.to_string(),
                category: rec.category.to_string(),
                start_ns: rec.start.as_nanos(),
                end_ns: rec.end.as_nanos(),
                deps: st.deps.iter().map(|d| d.0 as u64).collect(),
            }
        })
        .collect();
    ExecutedDag { nodes }
}

/// The two overlap pairs PICASSO's interleaving is supposed to win:
/// communication hidden under computation (Eq. 2/Eq. 3), and host-side
/// work (CPU + DRAM) hidden under device work (SM + device memory).
pub fn overlap_pairs() -> Vec<PairSpec> {
    vec![
        PairSpec {
            name: "comm_under_compute".into(),
            under_categories: vec!["communication".into()],
            over_categories: vec!["computation".into()],
            ..PairSpec::default()
        },
        PairSpec {
            name: "host_under_device".into(),
            under_kinds: vec!["cpu".into(), "dram".into()],
            over_kinds: vec!["gpu-sm".into(), "gpu-mem".into()],
            ..PairSpec::default()
        },
    ]
}

/// Runs the full causal analysis of a finished simulation against the
/// planned `micro_batches` × `groups` interleaving.
pub fn analyze_run(out: &SimulationOutput, micro_batches: usize, groups: usize) -> DagAnalysis {
    executed_dag(out).analyze(
        &overlap_pairs(),
        PlannedInterleaving {
            micro_batches,
            groups,
        },
    )
}

/// Exports the analysis as Prometheus-style gauges: `overlap_ratio{pair=}`
/// (achieved and planned), `critical_path_frac`, and the critical path's
/// per-category time share.
pub fn export_analysis_metrics(a: &DagAnalysis, registry: &MetricsRegistry) {
    registry.describe(
        "overlap_ratio",
        MetricKind::Gauge,
        "Achieved overlap per resource pair (fraction of hidden-side busy time)",
    );
    registry.describe(
        "overlap_planned_ratio",
        MetricKind::Gauge,
        "Planned overlap from the pass pipeline's D*K interleaving",
    );
    registry.describe(
        "critical_path_frac",
        MetricKind::Gauge,
        "Fraction of the makespan explained by the dependency-critical path",
    );
    registry.describe(
        "critical_path_category_frac",
        MetricKind::Gauge,
        "Critical-path time share per task category",
    );
    for o in &a.overlaps {
        registry.gauge_set("overlap_ratio", &[("pair", &o.pair)], o.achieved);
        registry.gauge_set("overlap_planned_ratio", &[("pair", &o.pair)], o.planned);
    }
    registry.gauge_set("critical_path_frac", &[], a.critical_path_frac);
    for (cat, frac) in &a.critical_frac_by_category {
        registry.gauge_set("critical_path_category_frac", &[("category", cat)], *frac);
    }
}

/// Lints the analysis:
///
/// * `run.low-overlap` — the pass pipeline planned D×K interleaving but the
///   achieved comm-under-compute overlap fell below [`LOW_OVERLAP_FRAC`] of
///   the plan: the schedule is not delivering the hiding it paid for.
/// * `run.idle-dominant-resource` — a lane that carries critical-path work
///   sat idle for more than [`IDLE_DOMINANT_FRAC`] of the makespan: the
///   resource that gates the run is mostly starved.
pub fn lint_analysis(
    dag: &ExecutedDag,
    a: &DagAnalysis,
    planned: PlannedInterleaving,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let planned_overlap = planned.planned_overlap();
    if planned_overlap > 0.0 {
        if let Some(o) = a.overlaps.iter().find(|o| o.pair == "comm_under_compute") {
            if o.achieved < planned_overlap * LOW_OVERLAP_FRAC {
                diags.push(
                    Diagnostic::new(
                        "run.low-overlap",
                        Severity::Warn,
                        Span::Run("overlap".into()),
                        format!(
                            "achieved comm-under-compute overlap {:.2} is below {:.0}% of the \
                             planned {:.2} (D={} micro-batches x K={} groups)",
                            o.achieved,
                            LOW_OVERLAP_FRAC * 100.0,
                            planned_overlap,
                            planned.micro_batches.max(1),
                            planned.groups.max(1),
                        ),
                    )
                    .with_hint(
                        "check the idle-gap attribution for the stage serializing the \
                         interleaved groups, or lower D/K to match the real dependency depth",
                    ),
                );
            }
        }
    }
    // Lanes that carry critical-path work but mostly idle.
    let critical_lanes: Vec<&str> = a
        .critical_path
        .iter()
        .filter_map(|id| dag.nodes.iter().find(|n| n.id == *id))
        .map(|n| n.lane.as_str())
        .collect();
    if let Some(worst) = a
        .lanes
        .iter()
        .filter(|l| critical_lanes.contains(&l.lane.as_str()))
        .filter(|l| {
            a.makespan_ns > 0 && l.idle_ns as f64 > a.makespan_ns as f64 * IDLE_DOMINANT_FRAC
        })
        .max_by(|x, y| x.idle_ns.cmp(&y.idle_ns).then(y.lane.cmp(&x.lane)))
    {
        diags.push(
            Diagnostic::new(
                "run.idle-dominant-resource",
                Severity::Warn,
                Span::Run(worst.lane.clone()),
                format!(
                    "lane {} carries critical-path work yet idles {:.0}% of the makespan \
                     ({} gaps, longest blocked on upstream work)",
                    worst.lane,
                    worst.idle_ns as f64 / a.makespan_ns as f64 * 100.0,
                    worst.gaps.len(),
                ),
            )
            .with_hint(
                "the run is gated by a mostly-starved resource; use the starved_by \
                 attribution in the analysis report to find the upstream stage to shrink",
            ),
        );
    }
    diags
}

/// The standalone `picasso.analysis_report` JSON document `repro --analyze`
/// emits: planned interleaving, the full [`DagAnalysis`], and the analysis
/// lint findings.
pub fn analysis_report_json(
    run: &str,
    out: &SimulationOutput,
    micro_batches: usize,
    groups: usize,
) -> Json {
    let planned = PlannedInterleaving {
        micro_batches,
        groups,
    };
    let dag = executed_dag(out);
    let a = dag.analyze(&overlap_pairs(), planned);
    let lint = LintReport::new(lint_analysis(&dag, &a, planned));
    Json::obj([
        (
            "schema_version",
            Json::UInt(ANALYSIS_REPORT_SCHEMA_VERSION as u64),
        ),
        ("kind", Json::str("picasso.analysis_report")),
        ("run", Json::str(run)),
        (
            "planned",
            Json::obj([
                ("micro_batches", micro_batches.into()),
                ("groups", groups.into()),
                ("planned_overlap", planned.planned_overlap().into()),
            ]),
        ),
        ("tasks", Json::UInt(dag.nodes.len() as u64)),
        ("analysis", a.to_json(&dag)),
        ("lint", lint.to_json()),
    ])
}

// ----------------------------------------------------------------------
// Trace cross-check: declared effects vs observed overlap.
// ----------------------------------------------------------------------

/// Seeded runs per scenario in the race cross-check (`repro --races`).
pub const RACE_CHECK_RUNS: usize = 3;

/// One observed conflicting overlap in an executed trace: two tasks whose
/// wall-clock intervals intersected and whose declared effects conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedOverlap {
    /// The order-independent conflict signature (rule, resource, op pair).
    pub sig: RaceSig,
    /// Engine task ids of the overlapping pair.
    pub tasks: (u64, u64),
    /// Iteration the pair ran in.
    pub iteration: usize,
    /// Executor the pair ran on.
    pub executor: usize,
}

/// One effectful task with its schedule-scope labels and observed
/// interval, extracted from the causal log + engine trace.
#[derive(Debug, Clone)]
struct EffectfulTask {
    id: u64,
    iteration: usize,
    executor: usize,
    micro: Option<usize>,
    start_ns: u64,
    end_ns: u64,
    kind: String,
    effects: EffectSet,
}

/// The pairwise core, separated from trace extraction for testability:
/// flags every pair on the same (iteration, executor) that overlaps in
/// time, is not split across two *different* micro-batch windows, and
/// declares conflicting effects.
///
/// The micro-batch exclusion mirrors what the static stage graph models
/// (one executor, one iteration, the first micro-batch): cross-micro
/// overlap of commutative scatters is the *point* of D-interleaving and
/// is already classified benign statically, so comparing across micro
/// windows would only manufacture signatures the static side can never
/// declare.
fn conflicts_among(tasks: &[EffectfulTask], allow: &RaceAllowlist) -> Vec<ObservedOverlap> {
    let mut out = Vec::new();
    for (i, a) in tasks.iter().enumerate() {
        for b in &tasks[i + 1..] {
            if a.iteration != b.iteration || a.executor != b.executor {
                continue;
            }
            if let (Some(ma), Some(mb)) = (a.micro, b.micro) {
                if ma != mb {
                    continue;
                }
            }
            // Strict interval intersection: touching endpoints are ordered.
            if a.start_ns >= b.end_ns || b.start_ns >= a.end_ns {
                continue;
            }
            for c in conflicts(&a.effects, &b.effects, allow) {
                out.push(ObservedOverlap {
                    sig: RaceSig::new(c.kind.rule_id(), &c.resource, &a.kind, &b.kind),
                    tasks: (a.id, b.id),
                    iteration: a.iteration,
                    executor: a.executor,
                });
            }
        }
    }
    out
}

/// Extracts every conflicting observed overlap from a finished run, under
/// the default commutative allowlist.
pub fn observed_conflicts(out: &SimulationOutput) -> Vec<ObservedOverlap> {
    // Label every task id with its (iteration, executor, micro) scope.
    let n = out.result.records.len();
    let mut labels: Vec<Option<(usize, usize, Option<usize>)>> = vec![None; n];
    for it in &out.scopes.iterations {
        for ex in &it.executors {
            labels[ex.range.start..ex.range.end.min(n)].fill(Some((it.index, ex.executor, None)));
            for m in &ex.micro_batches {
                labels[m.range.start..m.range.end.min(n)].fill(Some((
                    it.index,
                    ex.executor,
                    Some(m.index),
                )));
            }
        }
    }
    let tasks: Vec<EffectfulTask> = out
        .causal
        .iter()
        .filter(|st| !st.effects.is_empty())
        .filter_map(|st| {
            let (iteration, executor, micro) = labels[st.task.0]?;
            let rec = &out.result.records[st.task.0];
            Some(EffectfulTask {
                id: st.task.0 as u64,
                iteration,
                executor,
                micro,
                start_ns: rec.start.as_nanos(),
                end_ns: rec.end.as_nanos(),
                kind: format!("{:?}", st.kind),
                effects: st.effects.clone(),
            })
        })
        .collect();
    conflicts_among(&tasks, &RaceAllowlist::default())
}

/// Verifies declared effects against executed traces:
///
/// * `race.undeclared-overlap` (error) — an observed conflicting overlap
///   whose signature the static race set does not contain: the effect
///   annotations no longer predict what actually ran.
/// * `race.mhp-imprecision` (info) — a statically-flagged conflicting
///   pair that never overlapped in *any* of the seeded runs: the static
///   relation is missing a modeled ordering edge.
pub fn crosscheck_races(
    static_races: &[StaticRace],
    observed_per_run: &[Vec<ObservedOverlap>],
) -> Vec<Diagnostic> {
    let static_sigs: BTreeSet<&RaceSig> = static_races.iter().map(|r| &r.sig).collect();
    let mut diags = Vec::new();
    // Undeclared overlaps, deduplicated by signature across runs.
    let mut reported: BTreeSet<&RaceSig> = BTreeSet::new();
    for (run, observed) in observed_per_run.iter().enumerate() {
        for o in observed {
            if static_sigs.contains(&o.sig) || !reported.insert(&o.sig) {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    "race.undeclared-overlap",
                    Severity::Error,
                    Span::Run(o.sig.resource.clone()),
                    format!(
                        "run {run} observed `{}` overlapping `{}` on {} (tasks {} and {}, \
                         iteration {}, executor {}) but the static race set does not declare \
                         this conflict",
                        o.sig.ops.0,
                        o.sig.ops.1,
                        o.sig.resource,
                        o.tasks.0,
                        o.tasks.1,
                        o.iteration,
                        o.executor,
                    ),
                )
                .with_hint(
                    "the effect derivation table no longer predicts the lowering; update \
                     stage_effects (or add the missing ordering edge)",
                ),
            );
        }
    }
    // Static pairs that never manifested.
    let observed_sigs: BTreeSet<&RaceSig> =
        observed_per_run.iter().flatten().map(|o| &o.sig).collect();
    let mut flagged: BTreeSet<&RaceSig> = BTreeSet::new();
    for race in static_races {
        if observed_sigs.contains(&race.sig) || !flagged.insert(&race.sig) {
            continue;
        }
        // Hard races abort before scheduling, so "never observed" is only
        // meaningful evidence of imprecision for pairs a run can execute.
        let severity = Severity::Info;
        diags.push(
            Diagnostic::new(
                "race.mhp-imprecision",
                severity,
                Span::Stage(race.labels.0.clone()),
                format!(
                    "statically-MHP pair `{}` / `{}` ({} on {}) never overlapped in {} seeded \
                     run(s)",
                    race.labels.0,
                    race.labels.1,
                    match race.conflict.kind {
                        ConflictKind::BenignCommutative => "benign reduce-add pair",
                        _ => "conflict",
                    },
                    race.sig.resource,
                    observed_per_run.len(),
                ),
            )
            .with_hint(
                "the schedule orders this pair in practice; model the missing edge in the \
                 stage graph to shrink the MHP relation",
            ),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{simulate, SimConfig};
    use crate::strategy::Strategy;
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn run(micro: usize) -> (SimulationOutput, usize) {
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        spec.micro_batches = micro;
        let cfg = SimConfig {
            batch_per_executor: 1024,
            iterations: 2,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let groups = spec.group_count().max(1);
        (simulate(&spec, Strategy::Hybrid, &cfg).unwrap(), groups)
    }

    #[test]
    fn causal_log_covers_every_executed_task() {
        let (out, _) = run(1);
        assert_eq!(
            out.causal.len(),
            out.result.records.len(),
            "every engine task must appear in the causal log"
        );
        // Ids are exactly 0..n in creation order, and edges point backward.
        for (i, st) in out.causal.iter().enumerate() {
            assert_eq!(st.task.0, i);
            for d in &st.deps {
                assert!(d.0 < i, "dependency edges must point to earlier tasks");
            }
        }
    }

    #[test]
    fn executed_dag_joins_timestamps_and_lanes() {
        let (out, _) = run(1);
        let dag = executed_dag(&out);
        assert_eq!(dag.nodes.len(), out.result.records.len());
        assert_eq!(
            dag.makespan_ns(),
            out.result.makespan.as_nanos(),
            "DAG makespan equals the engine makespan"
        );
        assert!(
            dag.nodes.iter().any(|n| n.op.starts_with("launch:")),
            "launcher dispatch nodes are labeled"
        );
        assert!(dag.nodes.iter().any(|n| n.res_kind == "gpu-sm"));
        assert!(dag.nodes.iter().all(|n| n.end_ns >= n.start_ns));
    }

    #[test]
    fn analysis_is_deterministic_across_repeated_runs() {
        let (a, ga) = run(2);
        let (b, gb) = run(2);
        assert_eq!(ga, gb);
        let ra = analyze_run(&a, 2, ga);
        let rb = analyze_run(&b, 2, gb);
        assert_eq!(ra.digest, rb.digest, "critical-path digest is bit-stable");
        assert_eq!(ra.critical_path, rb.critical_path);
        assert_eq!(ra.makespan_ns, rb.makespan_ns);
    }

    #[test]
    fn critical_path_runs_from_a_source_to_the_final_task() {
        let (out, g) = run(1);
        let a = analyze_run(&out, 1, g);
        assert!(!a.critical_path.is_empty());
        assert!(a.critical_path_frac > 0.0 && a.critical_path_frac <= 1.0);
        // The path ends at a task finishing at the makespan.
        let last = *a.critical_path.last().unwrap();
        let rec = &out.result.records[last as usize];
        assert_eq!(rec.end.as_nanos(), out.result.makespan.as_nanos());
        // The terminal node can finish no later; upstream path nodes may
        // carry dependency slack when the gap to their successor was a
        // resource wait rather than the edge itself, but slack is always
        // bounded by the makespan.
        assert_eq!(a.slack_ns[&last], 0, "the terminal node has no slack");
        for id in &a.critical_path {
            assert!(a.slack_ns[id] <= a.makespan_ns);
        }
    }

    #[test]
    fn metrics_export_includes_overlap_and_critical_path_gauges() {
        let (out, g) = run(2);
        let a = analyze_run(&out, 2, g);
        let reg = MetricsRegistry::new();
        export_analysis_metrics(&a, &reg);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.gauges.iter().map(|((n, _), _)| n.as_str()).collect();
        assert!(names.contains(&"overlap_ratio"));
        assert!(names.contains(&"critical_path_frac"));
        let pairs: Vec<&str> = snap
            .gauges
            .iter()
            .filter(|((n, _), _)| n == "overlap_ratio")
            .flat_map(|((_, l), _)| l.iter().map(|(_, v)| v.as_str()))
            .collect();
        assert!(pairs.contains(&"comm_under_compute"));
        assert!(pairs.contains(&"host_under_device"));
    }

    #[test]
    fn analysis_report_document_is_valid_json_with_the_new_kind() {
        let (out, g) = run(2);
        let doc = analysis_report_json("test", &out, 2, g);
        let parsed = picasso_obs::json::parse(&doc.to_json()).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some("picasso.analysis_report")
        );
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(1));
        let analysis = parsed.get("analysis").expect("analysis section");
        assert!(analysis.get("digest").and_then(Json::as_str).is_some());
        assert!(analysis
            .get("critical_path")
            .and_then(Json::items)
            .is_some());
        assert_eq!(
            parsed
                .get("lint")
                .and_then(|l| l.get("kind"))
                .and_then(Json::as_str),
            Some("picasso.lint_report")
        );
    }

    #[test]
    fn observation_only_analysis_does_not_change_the_run() {
        // Two identical simulations, one analyzed: identical traces.
        let (a, g) = run(1);
        let _ = analyze_run(&a, 1, g);
        let (b, _) = run(1);
        assert_eq!(a.result.makespan, b.result.makespan);
        assert_eq!(a.result.records.len(), b.result.records.len());
    }

    #[test]
    fn low_overlap_lint_fires_only_when_the_plan_is_missed() {
        use picasso_obs::analysis::DagNode;
        // Serial comm after compute with D*K planned = 4: achieved 0.
        let dag = ExecutedDag {
            nodes: vec![
                DagNode {
                    id: 0,
                    op: "Mlp".into(),
                    lane: "n0/gpu-sm".into(),
                    res_kind: "gpu-sm".into(),
                    category: "computation".into(),
                    start_ns: 0,
                    end_ns: 10,
                    deps: vec![],
                },
                DagNode {
                    id: 1,
                    op: "AllReduce".into(),
                    lane: "n0/network".into(),
                    res_kind: "network".into(),
                    category: "communication".into(),
                    start_ns: 10,
                    end_ns: 30,
                    deps: vec![0],
                },
            ],
        };
        let planned = PlannedInterleaving {
            micro_batches: 2,
            groups: 2,
        };
        let a = dag.analyze(&overlap_pairs(), planned);
        let diags = lint_analysis(&dag, &a, planned);
        assert!(diags.iter().any(|d| d.rule == "run.low-overlap"));
        // The GPU lane is on the critical path and idles 2/3 of the run.
        assert!(diags.iter().any(|d| d.rule == "run.idle-dominant-resource"));
        // With no interleaving planned there is nothing to miss.
        let unplanned = PlannedInterleaving {
            micro_batches: 1,
            groups: 1,
        };
        let a1 = dag.analyze(&overlap_pairs(), unplanned);
        let d1 = lint_analysis(&dag, &a1, unplanned);
        assert!(!d1.iter().any(|d| d.rule == "run.low-overlap"));
    }

    // ------------------------------------------------------------------
    // Trace cross-check.
    // ------------------------------------------------------------------

    use picasso_lint::{Resource, ResourceKind};

    fn task(
        id: u64,
        micro: Option<usize>,
        span: (u64, u64),
        kind: &str,
        effects: EffectSet,
    ) -> EffectfulTask {
        EffectfulTask {
            id,
            iteration: 0,
            executor: 0,
            micro,
            start_ns: span.0,
            end_ns: span.1,
            kind: kind.into(),
            effects,
        }
    }

    fn cache(key: &str) -> Resource {
        Resource::new(ResourceKind::CacheHot, key)
    }

    #[test]
    fn conflicting_overlap_in_the_same_micro_window_is_observed() {
        let tasks = vec![
            task(
                0,
                Some(0),
                (0, 10),
                "CacheRefresh",
                EffectSet::empty().write(cache("c0")),
            ),
            task(
                1,
                Some(0),
                (5, 15),
                "EmbeddingScatter",
                EffectSet::empty().write(cache("c0")),
            ),
        ];
        let obs = conflicts_among(&tasks, &RaceAllowlist::default());
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].sig.rule, "race.write-write");
        assert_eq!(obs[0].sig.resource, "cache:c0");
        assert_eq!(obs[0].tasks, (0, 1));
    }

    #[test]
    fn overlap_split_across_micro_windows_is_not_comparable() {
        // Cross-micro scatter overlap is the point of D-interleaving; the
        // static graph models one micro-batch, so the pair is skipped.
        let tasks = vec![
            task(
                0,
                Some(0),
                (0, 10),
                "EmbeddingScatter",
                EffectSet::empty().write(cache("c0")),
            ),
            task(
                1,
                Some(1),
                (5, 15),
                "EmbeddingScatter",
                EffectSet::empty().write(cache("c0")),
            ),
        ];
        assert!(conflicts_among(&tasks, &RaceAllowlist::default()).is_empty());
        // But a task outside any micro window compares against both.
        let tasks = vec![
            task(
                0,
                None,
                (0, 10),
                "CacheRefresh",
                EffectSet::empty().write(cache("c0")),
            ),
            task(
                1,
                Some(1),
                (5, 15),
                "EmbeddingScatter",
                EffectSet::empty().write(cache("c0")),
            ),
        ];
        assert_eq!(conflicts_among(&tasks, &RaceAllowlist::default()).len(), 1);
    }

    #[test]
    fn disjoint_intervals_and_disjoint_resources_are_silent() {
        // Touching endpoints are ordered, not overlapping.
        let tasks = vec![
            task(
                0,
                None,
                (0, 10),
                "CacheRefresh",
                EffectSet::empty().write(cache("c0")),
            ),
            task(
                1,
                None,
                (10, 20),
                "EmbeddingScatter",
                EffectSet::empty().write(cache("c0")),
            ),
            task(
                2,
                None,
                (0, 20),
                "CacheRefresh",
                EffectSet::empty().write(cache("c1")),
            ),
        ];
        assert!(conflicts_among(&tasks, &RaceAllowlist::default()).is_empty());
    }

    #[test]
    fn undeclared_overlap_is_a_hard_error_and_dedups_across_runs() {
        let o = ObservedOverlap {
            sig: RaceSig::new(
                "race.write-write",
                &cache("c0"),
                "CacheRefresh",
                "EmbeddingScatter",
            ),
            tasks: (3, 7),
            iteration: 0,
            executor: 1,
        };
        // The same signature observed in every run reports once.
        let diags = crosscheck_races(&[], &[vec![o.clone()], vec![o.clone()], vec![o]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "race.undeclared-overlap");
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span, Span::Run("cache:c0".into()));
    }

    #[test]
    fn statically_declared_overlap_is_not_undeclared() {
        let sig = RaceSig::new(
            "race.benign-commutative",
            &cache("c0"),
            "EmbeddingScatter",
            "EmbeddingScatter",
        );
        let races = vec![StaticRace {
            a: 0,
            b: 1,
            labels: ("chain0/bwd".into(), "chain0/bwd2".into()),
            conflict: picasso_lint::effects::Conflict {
                kind: ConflictKind::BenignCommutative,
                resource: cache("c0"),
                modes: (
                    picasso_lint::AccessMode::ReduceAdd,
                    picasso_lint::AccessMode::ReduceAdd,
                ),
            },
            sig: sig.clone(),
        }];
        let observed = vec![vec![ObservedOverlap {
            sig,
            tasks: (1, 2),
            iteration: 0,
            executor: 0,
        }]];
        let diags = crosscheck_races(&races, &observed);
        assert!(
            diags.is_empty(),
            "declared + observed pair must be silent: {diags:?}"
        );
    }

    #[test]
    fn never_observed_static_pair_reports_mhp_imprecision() {
        let sig = RaceSig::new(
            "race.benign-commutative",
            &cache("c0"),
            "EmbeddingScatter",
            "EmbeddingScatter",
        );
        let races = vec![StaticRace {
            a: 0,
            b: 1,
            labels: ("chain0/bwd".into(), "chain0/bwd2".into()),
            conflict: picasso_lint::effects::Conflict {
                kind: ConflictKind::BenignCommutative,
                resource: cache("c0"),
                modes: (
                    picasso_lint::AccessMode::ReduceAdd,
                    picasso_lint::AccessMode::ReduceAdd,
                ),
            },
            sig,
        }];
        let diags = crosscheck_races(&races, &[vec![], vec![], vec![]]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "race.mhp-imprecision");
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn crosscheck_is_clean_on_a_real_hybrid_run() {
        // The closed loop on a real lowering: the static race set of the
        // Hybrid DLRM graph is empty, and no executed trace may contain a
        // conflicting overlap the static side failed to declare.
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        spec.micro_batches = 2;
        for chain in &mut spec.chains {
            chain.cache_hit_ratio = 0.5; // exercise the hot-cache effects
        }
        let cfg = SimConfig {
            batch_per_executor: 1024,
            iterations: 2,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let g = crate::lint::stage_graph(&spec, Strategy::Hybrid, &cfg);
        let races = g.static_races();
        assert!(
            races.is_empty(),
            "hybrid lowering must be race-free: {races:?}"
        );
        let mut observed = Vec::new();
        for _ in 0..2 {
            let out = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
            observed.push(observed_conflicts(&out));
        }
        for (run, obs) in observed.iter().enumerate() {
            assert!(
                obs.is_empty(),
                "run {run} observed undeclared conflicting overlap: {obs:?}"
            );
        }
        let diags = crosscheck_races(&races, &observed);
        assert!(diags.is_empty(), "cross-check must be silent: {diags:?}");
    }
}
