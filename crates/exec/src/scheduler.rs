//! The scheduler: lowers a logical WDL graph onto the simulated cluster.
//!
//! For every executor and iteration it emits the embedding chains (gated by
//! K-interleaving groups), interaction modules, MLP, the backward mirror,
//! and the strategy's parameter synchronization, wiring dependencies so that
//! overlap — or the lack of it — emerges from the event engine:
//!
//! - chains within one K-group issue together; the next group's stages wait
//!   for this group's communication step (the Fig. 8c stagger);
//! - D-interleaving splits each iteration into micro-batches whose compute
//!   overlaps the next micro-batch's embedding traffic;
//! - synchronous strategies end each iteration with a global barrier, while
//!   async PS lets every worker run free;
//! - data loading for iteration `i+1` prefetches during iteration `i`.

use crate::calibration::CostRecord;
use crate::costs::{self, PlanContext, ResTarget, StageTask};
use crate::lint::{stage_effects, EffectScope};
use crate::observe::{ExecutorScope, IterationScope, MicroBatchScope, ScheduleScopes, TaskRange};
use crate::strategy::Strategy;
use picasso_graph::{OpKind, WdlSpec};
use picasso_lint::EffectSet;
use picasso_sim::{Cluster, Engine, EngineError, MachineSpec, ResourceId, RunResult, Task, TaskId};
use std::cell::RefCell;

/// Simulation shape.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Instances per executor per iteration.
    pub batch_per_executor: usize,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Worker machines.
    pub machines: usize,
    /// Machine specification (Table I presets).
    pub machine: MachineSpec,
    /// Halve collective payloads (half-precision quantized communication).
    pub quantized_comm: bool,
}

impl SimConfig {
    /// A single EFLOPS node, 6 iterations — the default experiment shape.
    pub fn eflops(machines: usize, batch: usize) -> SimConfig {
        SimConfig {
            batch_per_executor: batch,
            iterations: 6,
            machines,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        }
    }

    /// A Gn6e node (8 GPUs), 6 iterations.
    pub fn gn6e(machines: usize, batch: usize) -> SimConfig {
        SimConfig {
            batch_per_executor: batch,
            iterations: 6,
            machines,
            machine: MachineSpec::gn6e(),
            quantized_comm: false,
        }
    }
}

/// One node of the causal event log: an executed stage with its true
/// dependency edges, recorded while the schedule was built. The engine's
/// [`RunResult`] carries the matching timestamps and resource assignment;
/// joining the two reconstructs the executed DAG (see [`crate::analysis`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalStage {
    /// Engine task id (indexes `result.records`).
    pub task: TaskId,
    /// Operator the stage lowers (the launcher node carries its stage's op).
    pub kind: OpKind,
    /// Executor the stage was scheduled for.
    pub executor: usize,
    /// Whether this is the host-side launcher dispatch for its stage, as
    /// opposed to the hardware work itself.
    pub launcher: bool,
    /// The tasks this node waited for (exactly the engine dependency edges).
    pub deps: Vec<TaskId>,
    /// Declared effect set over shared resources (empty for launcher
    /// dispatches and pure stages); derived by the same table the static
    /// race rules use, and verified against observed overlap by the
    /// trace cross-check.
    pub effects: EffectSet,
}

/// A finished simulation plus its shape.
#[derive(Debug)]
pub struct SimulationOutput {
    /// Raw engine trace.
    pub result: RunResult,
    /// Instances per executor per iteration.
    pub batch: usize,
    /// Iterations simulated.
    pub iterations: usize,
    /// Executors (GPU workers).
    pub executors: usize,
    /// Worker machines.
    pub machines: usize,
    /// Task-id ranges of every iteration / executor / micro-batch / K-group,
    /// recorded while the graph was built (see [`crate::observe`]).
    pub scopes: ScheduleScopes,
    /// Model-predicted cost of every hardware stage, for calibration against
    /// the engine's observed durations (see [`crate::calibration`]). Launcher
    /// dispatch tasks are not predicted and not recorded.
    pub costs: Vec<CostRecord>,
    /// Causal event log: every executed task (launcher and hardware alike)
    /// with its dependency edges, in creation order.
    pub causal: Vec<CausalStage>,
    /// Handles of every parameter-server resource, precomputed from the
    /// cluster topology so consumers never filter resources by name prefix.
    /// Empty for strategies without PS nodes.
    pub server_resources: Vec<ResourceId>,
}

impl SimulationOutput {
    /// Training throughput in instances per second per machine (the paper's
    /// IPS metric). Zero for degenerate runs (no iterations, no machines, or
    /// an empty schedule) rather than NaN/infinity.
    pub fn ips_per_node(&self) -> f64 {
        let secs = self.result.makespan.as_secs_f64();
        if secs <= 0.0 || self.machines == 0 {
            return 0.0;
        }
        let total = (self.batch * self.executors * self.iterations) as f64;
        total / secs / self.machines as f64
    }

    /// Seconds per iteration; zero when no iterations were simulated.
    pub fn secs_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.result.makespan.as_secs_f64() / self.iterations as f64
    }
}

/// Lowers and runs `spec` under `strategy` on the configured cluster.
pub fn simulate(
    spec: &WdlSpec,
    strategy: Strategy,
    cfg: &SimConfig,
) -> Result<SimulationOutput, EngineError> {
    let mut engine = Engine::new();
    let cluster = Cluster::build(
        cfg.machine.clone(),
        cfg.machines,
        strategy.server_count(),
        &mut engine,
    );
    let n_exec = cluster.executor_count();
    let ctx = PlanContext {
        n_exec,
        per_node: cfg.machine.gpus_per_node,
        has_nvlink: cfg.machine.nvlink_bw.is_some(),
        strategy,
        comm_scale: if cfg.quantized_comm { 0.5 } else { 1.0 },
    };

    // Chains ordered into K-interleaving groups.
    let n_groups = spec.group_count().max(1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, c) in spec.chains.iter().enumerate() {
        groups[(c.group as usize).min(n_groups - 1)].push(i);
    }

    // field -> chain lookup for module dependencies.
    let max_field = spec
        .chains
        .iter()
        .flat_map(|c| c.fields.iter())
        .copied()
        .max()
        .map(|f| f as usize + 1)
        .unwrap_or(0);
    let mut field_chain = vec![usize::MAX; max_field];
    for (i, c) in spec.chains.iter().enumerate() {
        for &f in &c.fields {
            field_chain[f as usize] = i;
        }
    }
    // chain -> consuming modules (for backward deps).
    let mut chain_consumers: Vec<Vec<usize>> = vec![Vec::new(); spec.chains.len()];
    let mut module_chains: Vec<Vec<usize>> = Vec::with_capacity(spec.modules.len());
    for (mi, m) in spec.modules.iter().enumerate() {
        let mut chains: Vec<usize> = m
            .input_fields
            .iter()
            .map(|&f| field_chain[f as usize])
            .filter(|&c| c != usize::MAX)
            .collect();
        chains.sort_unstable();
        chains.dedup();
        for &c in &chains {
            chain_consumers[c].push(mi);
        }
        module_chains.push(chains);
    }

    let micro = spec.micro_batches.max(1);
    let sparse_grad_bytes = if matches!(strategy, Strategy::DataParallel) {
        // Unique rows per iteration ride the allreduce under pure DP.
        spec.chains
            .iter()
            .map(|c| {
                cfg.batch_per_executor as f64
                    * c.ids_per_instance
                    * c.unique_ratio
                    * c.dim as f64
                    * 4.0
            })
            .sum()
    } else {
        0.0
    };

    let dispatch_secs = cfg.machine.overheads.op_dispatch.as_secs_f64();
    // Predicted stage costs, appended as tasks are created. A RefCell because
    // `add` is shared by every call site below; recording is append-only
    // bookkeeping the schedule never reads back.
    let cost_log: RefCell<Vec<CostRecord>> = RefCell::new(Vec::new());
    // Causal event log: every task the closure creates, with the dependency
    // edges it was actually given. Same append-only discipline as cost_log —
    // scheduling never reads it back.
    let causal_log: RefCell<Vec<CausalStage>> = RefCell::new(Vec::new());
    let add = |engine: &mut Engine,
               exec: usize,
               st: &StageTask,
               deps: &[TaskId],
               dispatch_scale: f64,
               scope: EffectScope|
     -> Result<TaskId, EngineError> {
        let h = &cluster.executors[exec];
        let (resource, server_side) = match st.target {
            ResTarget::GpuSm => (h.gpu_sm, false),
            ResTarget::GpuMem => (h.gpu_mem, false),
            ResTarget::Pcie => (h.pcie, false),
            ResTarget::Dram => (h.dram, false),
            ResTarget::Cpu => (h.cpu, false),
            ResTarget::Nic => (h.nic, false),
            ResTarget::NvLink => (h.nvlink.unwrap_or(h.nic), false),
            ResTarget::ServerNic => {
                let s = exec % cluster.servers.len().max(1);
                (cluster.servers[s].nic, true)
            }
            ResTarget::ServerDram => {
                let s = exec % cluster.servers.len().max(1);
                (cluster.servers[s].dram, true)
            }
        };
        // Framework op dispatch: the stage's `launches` graph operations are
        // scheduled by the executor's launcher threads before the hardware
        // sees them. This serialized host cost is what packing amortizes —
        // a packed stage dispatches once for many tables. Server-side work
        // is dispatched by the server process and skips the worker launcher.
        let mut stage_deps: Vec<TaskId> = deps.to_vec();
        if !server_side && st.launches > 0 && dispatch_scale > 0.0 {
            let mut launch = Task::new(
                h.launcher,
                st.launches as f64 * dispatch_secs * dispatch_scale,
                st.kind.class().category(),
            );
            launch.deps.extend_from_slice(deps);
            let launch_id = engine.add_task(launch)?;
            causal_log.borrow_mut().push(CausalStage {
                task: launch_id,
                kind: st.kind,
                executor: exec,
                launcher: true,
                deps: deps.to_vec(),
                effects: EffectSet::empty(),
            });
            stage_deps = vec![launch_id];
        }
        let mut task = Task::new(resource, st.work, st.kind.class().category());
        if server_side && st.launches > 1 {
            // Server processes dispatch their own ops; charge the
            // multiplicity as inflated work on the server resource.
            let overhead = engine.resource_spec(resource).launch_overhead.as_secs_f64();
            let rate = engine.resource_spec(resource).rate;
            task.work += (st.launches - 1) as f64 * overhead * rate;
        }
        task.deps = stage_deps.clone();
        // Predict with the same closed-form the cost model uses — overhead
        // plus rate-scaled work, after any server-side inflation — so the
        // calibration gap isolates queueing and congestion.
        let spec = engine.resource_spec(resource);
        let predicted_secs = spec.launch_overhead.as_secs_f64() + task.work / spec.rate;
        let id = engine.add_task(task)?;
        cost_log.borrow_mut().push(CostRecord {
            task: id,
            kind: st.kind,
            predicted_secs,
        });
        causal_log.borrow_mut().push(CausalStage {
            task: id,
            kind: st.kind,
            executor: exec,
            launcher: false,
            deps: stage_deps,
            effects: stage_effects(st.kind, st.target, scope),
        });
        Ok(id)
    };

    // Per executor: prefetch chain + iteration dependency.
    let mut prev_load: Vec<Option<TaskId>> = vec![None; n_exec];
    let mut iter_dep: Vec<Vec<TaskId>> = vec![Vec::new(); n_exec];

    // Tasks are added contiguously per logical scope, so `task_count()`
    // snapshots delimit each scope as a half-open task-id range. This is
    // pure bookkeeping: it adds no tasks and reads no engine state that
    // scheduling depends on.
    let mut scopes = ScheduleScopes::default();

    for iter in 0..cfg.iterations {
        let iter_start = engine.task_count();
        let mut executor_scopes: Vec<ExecutorScope> = Vec::with_capacity(n_exec);
        let mut iter_ends: Vec<TaskId> = Vec::with_capacity(n_exec);
        for e in 0..n_exec {
            let exec_start = engine.task_count();
            let mut micro_scopes: Vec<MicroBatchScope> = Vec::new();
            // Data transmission (prefetched: depends only on the previous
            // load and the previous-iteration gate, not on compute).
            let io = StageTask {
                kind: OpKind::DataLoad,
                target: ResTarget::Nic,
                work: cfg.batch_per_executor as f64 * spec.io_bytes_per_instance / costs::NET_EFF,
                launches: OpKind::DataLoad.micro_ops(),
            };
            let mut io_deps: Vec<TaskId> = prev_load[e].into_iter().collect();
            io_deps.extend(iter_dep[e].iter().copied());
            let load = add(&mut engine, e, &io, &io_deps, 1.0, EffectScope::Io)?;
            prev_load[e] = Some(load);

            let mut bwd_ends: Vec<TaskId> = Vec::new();
            // D-interleaving pipeline gate: a chain's lookups in micro-batch
            // m wait for the same chain's communication step in m-1, so
            // micro-batches stream through the interconnects instead of
            // bursting all at once.
            let mut prev_micro_comm: Vec<Option<TaskId>> = vec![None; spec.chains.len()];
            for m in 0..micro {
                let b = split_batch(cfg.batch_per_executor, micro, m);
                if b == 0 {
                    continue;
                }
                let micro_start = engine.task_count();
                let mut group_ranges: Vec<TaskRange> = Vec::new();
                // First micro-batch pays full framework dispatch; repeats of
                // the same operations re-execute through a warm executor.
                let dispatch_scale = if m == 0 { 1.0 } else { 0.35 };
                // Embedding layer, group by group.
                let mut gate: Vec<TaskId> = Vec::new();
                let mut chain_last: Vec<Option<TaskId>> = vec![None; spec.chains.len()];
                // Communication tasks per group, for declared `group_deps`
                // edges. Only forward edges (from < to) are honored here;
                // the lint layer rejects self/backward edges before the
                // scheduler runs.
                let mut group_comm: Vec<Vec<TaskId>> = Vec::with_capacity(groups.len());
                for (gi, group) in groups.iter().enumerate() {
                    let group_start = engine.task_count();
                    let mut next_gate: Vec<TaskId> = Vec::new();
                    let extra: Vec<TaskId> = spec
                        .group_deps
                        .iter()
                        .filter(|&&(from, to)| to as usize == gi && (from as usize) < gi)
                        .flat_map(|&(from, _)| group_comm[from as usize].iter().copied())
                        .collect();
                    for &ci in group {
                        let chain = &spec.chains[ci];
                        let (stages, comm_idx) = costs::chain_forward(chain, b, &ctx);
                        let mut first_deps: Vec<TaskId> = vec![load];
                        first_deps.extend(iter_dep[e].iter().copied());
                        first_deps.extend(prev_micro_comm[ci]);
                        let mut prev: Option<TaskId> = None;
                        let mut comm_task: Option<TaskId> = None;
                        for (si, st) in stages.iter().enumerate() {
                            let mut deps: Vec<TaskId> = match prev {
                                Some(p) => vec![p],
                                None => first_deps.clone(),
                            };
                            // K-interleaving (Fig. 8c): only the
                            // *communication* step is ordered behind the
                            // previous group's communication — other stages
                            // of different groups overlap freely, but the
                            // interconnect sees paced, not bursty, arrivals.
                            if si == comm_idx && !chain.interleave_excluded {
                                deps.extend(gate.iter().copied());
                                for &t in &extra {
                                    if !deps.contains(&t) {
                                        deps.push(t);
                                    }
                                }
                            }
                            let t = add(
                                &mut engine,
                                e,
                                st,
                                &deps,
                                dispatch_scale,
                                EffectScope::Chain(ci),
                            )?;
                            if si == comm_idx {
                                comm_task = Some(t);
                                if !chain.interleave_excluded {
                                    next_gate.push(t);
                                }
                            }
                            prev = Some(t);
                        }
                        chain_last[ci] = prev;
                        prev_micro_comm[ci] = comm_task.or(prev);
                    }
                    group_comm.push(next_gate.clone());
                    if !next_gate.is_empty() {
                        gate = next_gate;
                    }
                    let group_range = TaskRange {
                        start: group_start,
                        end: engine.task_count(),
                    };
                    if !group_range.is_empty() {
                        group_ranges.push(group_range);
                    }
                }

                // Interaction modules.
                let mut module_fwd: Vec<TaskId> = Vec::with_capacity(spec.modules.len());
                for (mi, module) in spec.modules.iter().enumerate() {
                    let mut deps: Vec<TaskId> = module_chains[mi]
                        .iter()
                        .filter_map(|&c| chain_last[c])
                        .collect();
                    if deps.is_empty() {
                        deps.push(load);
                        deps.extend(iter_dep[e].iter().copied());
                    }
                    module_fwd.push(add(
                        &mut engine,
                        e,
                        &costs::module_forward(module, b),
                        &deps,
                        dispatch_scale,
                        EffectScope::Dense,
                    )?);
                }

                // MLP forward + backward.
                let mlp_deps: Vec<TaskId> = if module_fwd.is_empty() {
                    chain_last.iter().filter_map(|&t| t).collect()
                } else {
                    module_fwd.clone()
                };
                let fwd = add(
                    &mut engine,
                    e,
                    &costs::mlp_forward(&spec.mlp, b),
                    &mlp_deps,
                    dispatch_scale,
                    EffectScope::Dense,
                )?;
                let bwd = add(
                    &mut engine,
                    e,
                    &costs::mlp_backward(&spec.mlp, b),
                    &[fwd],
                    dispatch_scale,
                    EffectScope::Dense,
                )?;

                // Module backward.
                let mut module_bwd: Vec<TaskId> = Vec::with_capacity(spec.modules.len());
                for module in &spec.modules {
                    module_bwd.push(add(
                        &mut engine,
                        e,
                        &costs::module_backward(module, b),
                        &[bwd],
                        dispatch_scale,
                        EffectScope::Dense,
                    )?);
                }

                // Embedding backward per chain.
                for (ci, chain) in spec.chains.iter().enumerate() {
                    let deps: Vec<TaskId> = if chain_consumers[ci].is_empty() {
                        vec![bwd]
                    } else {
                        chain_consumers[ci]
                            .iter()
                            .map(|&mi| module_bwd[mi])
                            .collect()
                    };
                    let mut prev: Option<TaskId> = None;
                    for st in costs::chain_backward(chain, b, &ctx) {
                        let d: Vec<TaskId> = match prev {
                            Some(p) => vec![p],
                            None => deps.clone(),
                        };
                        prev = Some(add(
                            &mut engine,
                            e,
                            &st,
                            &d,
                            dispatch_scale,
                            EffectScope::Chain(ci),
                        )?);
                    }
                    if let Some(p) = prev {
                        bwd_ends.push(p);
                    }
                }
                bwd_ends.push(bwd);
                bwd_ends.extend(module_bwd);
                micro_scopes.push(MicroBatchScope {
                    index: m,
                    range: TaskRange {
                        start: micro_start,
                        end: engine.task_count(),
                    },
                    groups: group_ranges,
                });
            }

            // Dense parameter synchronization once per iteration.
            let mut prev: Option<TaskId> = None;
            for st in costs::dense_sync_stages(spec.dense_params(), sparse_grad_bytes, &ctx) {
                let deps: Vec<TaskId> = match prev {
                    Some(p) => vec![p],
                    None => bwd_ends.clone(),
                };
                prev = Some(add(&mut engine, e, &st, &deps, 1.0, EffectScope::Dense)?);
            }
            iter_ends.push(prev.unwrap_or_else(|| *bwd_ends.last().expect("nonempty iteration")));
            executor_scopes.push(ExecutorScope {
                executor: e,
                range: TaskRange {
                    start: exec_start,
                    end: engine.task_count(),
                },
                micro_batches: micro_scopes,
            });
        }

        // Iteration boundary: synchronous strategies join all executors.
        if strategy.is_async() {
            for (e, &end) in iter_ends.iter().enumerate() {
                iter_dep[e] = vec![end];
            }
        } else {
            let barrier = StageTask {
                kind: OpKind::Sync,
                target: ResTarget::Cpu,
                work: 1.0,
                launches: 1,
            };
            let b = add(&mut engine, 0, &barrier, &iter_ends, 1.0, EffectScope::Io)?;
            for dep in iter_dep.iter_mut() {
                *dep = vec![b];
            }
        }
        scopes.iterations.push(IterationScope {
            index: iter,
            range: TaskRange {
                start: iter_start,
                end: engine.task_count(),
            },
            executors: executor_scopes,
        });
    }

    let server_resources = cluster.server_resource_ids();
    let result = engine.run()?;
    Ok(SimulationOutput {
        result,
        batch: cfg.batch_per_executor,
        iterations: cfg.iterations,
        executors: n_exec,
        machines: cfg.machines,
        scopes,
        costs: cost_log.into_inner(),
        causal: causal_log.into_inner(),
        server_resources,
    })
}

/// Splits `batch` into `micro` near-equal parts; part `m` gets the
/// remainder-adjusted share.
pub(crate) fn split_batch(batch: usize, micro: usize, m: usize) -> usize {
    let base = batch / micro;
    let rem = batch % micro;
    base + usize::from(m < rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    use picasso_sim::TaskCategory;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            batch_per_executor: 1024,
            iterations: 3,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        }
    }

    #[test]
    fn split_batch_conserves_instances() {
        for batch in [10usize, 17, 1000] {
            for micro in 1..=7 {
                let total: usize = (0..micro).map(|m| split_batch(batch, micro, m)).sum();
                assert_eq!(total, batch);
            }
        }
    }

    #[test]
    fn dlrm_simulates_end_to_end() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let out = simulate(&spec, Strategy::Hybrid, &quick_cfg()).unwrap();
        assert!(out.result.makespan.as_secs_f64() > 0.0);
        assert!(out.ips_per_node() > 0.0);
        assert_eq!(out.executors, 2);
        // Every category of work exists in the trace.
        for cat in [
            TaskCategory::DataIo,
            TaskCategory::Memory,
            TaskCategory::Communication,
            TaskCategory::Computation,
        ] {
            assert!(
                out.result.records.iter().any(|r| r.category == cat),
                "missing {cat}"
            );
        }
    }

    #[test]
    fn ps_uses_server_resources() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let out = simulate(&spec, Strategy::PsAsync { servers: 1 }, &quick_cfg()).unwrap();
        // Server node exists beyond the 2 worker machines; its NIC is busy.
        // The precomputed handle set replaces the old "ps0/" name-prefix scan.
        let handles: std::collections::HashSet<ResourceId> =
            out.server_resources.iter().copied().collect();
        assert!(
            !handles.is_empty(),
            "PS strategy must expose server handles"
        );
        let server_busy: f64 = handles
            .iter()
            .map(|&id| out.result.resources[id.0].busy.as_secs_f64())
            .sum();
        assert!(server_busy > 0.0, "PS server should carry load");
    }

    #[test]
    fn async_ps_is_faster_than_sync_ps_per_iteration() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let a = simulate(&spec, Strategy::PsAsync { servers: 1 }, &quick_cfg()).unwrap();
        let s = simulate(&spec, Strategy::PsSync { servers: 1 }, &quick_cfg()).unwrap();
        assert!(
            a.result.makespan <= s.result.makespan,
            "removing the barrier cannot slow things down"
        );
    }

    #[test]
    fn hybrid_beats_ps_on_throughput() {
        // At production batch sizes the PS servers congest; collectives win.
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let mut cfg = quick_cfg();
        cfg.batch_per_executor = 8192;
        cfg.machines = 4;
        let hybrid = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        let ps = simulate(&spec, Strategy::PsAsync { servers: 1 }, &cfg).unwrap();
        assert!(
            hybrid.ips_per_node() > ps.ips_per_node(),
            "hybrid {} <= ps {}",
            hybrid.ips_per_node(),
            ps.ips_per_node()
        );
    }

    #[test]
    fn micro_batching_overlaps_phases() {
        let data = DatasetSpec::alibaba();
        let mut spec = ModelKind::Din.build(&data);
        let mut cfg = quick_cfg();
        cfg.batch_per_executor = 4096;
        let serial = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        spec.micro_batches = 2;
        let pipelined = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        // On an unpacked graph the re-dispatch cost can offset part of the
        // overlap, but pipelining must not be catastrophic.
        assert!(
            pipelined.result.makespan.as_secs_f64() < serial.result.makespan.as_secs_f64() * 1.15,
            "pipelining should not hurt badly: {} vs {}",
            pipelined.result.makespan,
            serial.result.makespan
        );
    }

    #[test]
    fn more_executors_increase_cluster_throughput() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let mut cfg = quick_cfg();
        cfg.machines = 1;
        let one = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        cfg.machines = 4;
        let four = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        let total_one = one.ips_per_node() * 1.0;
        let total_four = four.ips_per_node() * 4.0;
        assert!(
            total_four > 2.0 * total_one,
            "scaling out should help: 1 node {total_one}, 4 nodes {total_four}"
        );
    }
}
