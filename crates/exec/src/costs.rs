//! Per-stage cost planning: turns logical chains/modules into resource
//! targeted work items the scheduler places onto the simulator.
//!
//! All volumes are computed for a concrete (micro-)batch size. Bandwidth
//! resources get efficiency derates reflecting random-access patterns and
//! protocol overhead on real hardware.

use crate::collectives;
use crate::strategy::{EmbeddingExchange, Strategy};
use picasso_graph::{EmbeddingChain, InteractionModule, MlpSpec, OpKind};

/// Effective fraction of peak DRAM bandwidth under random row access
/// (hashmap gather/scatter).
pub const DRAM_RANDOM_EFF: f64 = 0.30;
/// Effective fraction of peak HBM bandwidth under random row access.
pub const HBM_RANDOM_EFF: f64 = 0.35;
/// Effective fraction of NIC line rate after protocol overhead.
pub const NET_EFF: f64 = 0.70;
/// Effective fraction of PCIe peak for DMA bursts.
pub const PCIE_EFF: f64 = 0.80;
/// Effective fraction of GPU peak FLOPS for WDL-sized kernels.
pub const GPU_EFF: f64 = 0.45;
/// Host-side preprocessing cost per categorical ID (hashing, ragged
/// assembly), in CPU FLOPs-equivalent.
pub const PREPROCESS_FLOPS_PER_ID: f64 = 400.0;
/// Backward dense compute relative to forward.
pub const BACKWARD_FLOP_FACTOR: f64 = 2.0;

/// Which cluster resource a stage runs on (resolved per executor by the
/// scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResTarget {
    /// GPU streaming multiprocessors.
    GpuSm,
    /// GPU device memory.
    GpuMem,
    /// Host-device PCIe link.
    Pcie,
    /// Host DRAM.
    Dram,
    /// Host CPU.
    Cpu,
    /// Machine NIC.
    Nic,
    /// Intra-node NVLink fabric (scheduler falls back to NIC if absent).
    NvLink,
    /// A parameter-server node's NIC (round-robin over servers).
    ServerNic,
    /// A parameter-server node's DRAM.
    ServerDram,
}

/// One plannable unit of work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTask {
    /// Logical operator kind (drives categories and accounting).
    pub kind: OpKind,
    /// Resource this stage is bounded by.
    pub target: ResTarget,
    /// Work in the target's units (bytes or FLOPs), already derated.
    pub work: f64,
    /// Kernel/op launches this stage pays for.
    pub launches: u32,
}

impl StageTask {
    fn new(kind: OpKind, target: ResTarget, work: f64) -> StageTask {
        StageTask {
            kind,
            target,
            work: work.max(0.0),
            launches: kind.micro_ops(),
        }
    }
}

/// Cluster-shape context needed by the planners.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext {
    /// Total executors.
    pub n_exec: usize,
    /// Executors per machine (NVLink domain size).
    pub per_node: usize,
    /// Whether the machine has an NVLink fabric.
    pub has_nvlink: bool,
    /// The training strategy.
    pub strategy: Strategy,
    /// Byte multiplier on collective payloads (0.5 under half-precision
    /// quantized communication, 1.0 otherwise).
    pub comm_scale: f64,
}

impl PlanContext {
    /// Full-precision context (tests and default paths).
    pub fn new(n_exec: usize, per_node: usize, has_nvlink: bool, strategy: Strategy) -> Self {
        PlanContext {
            n_exec,
            per_node,
            has_nvlink,
            strategy,
            comm_scale: 1.0,
        }
    }
}

/// Plans the forward embedding stages of one chain at `b` instances.
///
/// Returns the stages in dependency order; the index of the stage that
/// constitutes the chain's *communication* step (for K-interleaving group
/// gating) is returned alongside.
pub fn chain_forward(
    chain: &EmbeddingChain,
    b: usize,
    ctx: &PlanContext,
) -> (Vec<StageTask>, usize) {
    let ids = b as f64 * chain.ids_per_instance;
    let rows = ids * chain.unique_ratio;
    let row_bytes = chain.dim as f64 * 4.0;
    let mut stages = Vec::with_capacity(8);

    stages.push(StageTask::new(
        OpKind::Preprocess,
        ResTarget::Cpu,
        ids * PREPROCESS_FLOPS_PER_ID,
    ));
    if chain.fused_unique_partition {
        stages.push(StageTask::new(
            OpKind::UniquePartition,
            ResTarget::Dram,
            ids * 8.0 * 3.0,
        ));
    } else {
        stages.push(StageTask::new(
            OpKind::Unique,
            ResTarget::Dram,
            ids * 8.0 * 2.0,
        ));
        stages.push(StageTask::new(
            OpKind::Partition,
            ResTarget::Dram,
            ids * 8.0 * 2.0,
        ));
    }

    let comm_idx;
    match ctx.strategy.embedding_exchange() {
        EmbeddingExchange::ParameterServer => {
            // The server gathers rows from its DRAM and ships them through
            // its NIC; the worker receives on its own NIC. Server-side tasks
            // are planned here and placed on server resources by the
            // scheduler.
            let bytes = rows * row_bytes;
            let wire = bytes * ctx.comm_scale;
            stages.push(StageTask::new(
                OpKind::Gather,
                ResTarget::ServerDram,
                bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
            comm_idx = stages.len();
            stages.push(StageTask::new(
                OpKind::PsPull,
                ResTarget::ServerNic,
                wire / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::PsPull,
                ResTarget::Nic,
                wire / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::HostToDevice,
                ResTarget::Pcie,
                bytes / PCIE_EFF,
            ));
        }
        EmbeddingExchange::Replicated => {
            // Lookups entirely local (tables replicated in host DRAM); the
            // full activation crosses PCIe. Gradient AllReduce carries the
            // sparse rows later.
            stages.push(StageTask::new(
                OpKind::Gather,
                ResTarget::Dram,
                rows * row_bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
            comm_idx = stages.len();
            stages.push(StageTask::new(
                OpKind::HostToDevice,
                ResTarget::Pcie,
                rows * row_bytes / PCIE_EFF,
            ));
        }
        EmbeddingExchange::AllToAll => {
            // Hot rows served straight from device memory (HybridHash);
            // misses gathered from host DRAM and DMAed up.
            let hit = chain.cache_hit_ratio.clamp(0.0, 1.0);
            let hot_bytes = rows * hit * row_bytes;
            let cold_bytes = rows * (1.0 - hit) * row_bytes;
            if hot_bytes > 0.0 {
                // Hot-storage hits are served inside the same packed gather
                // kernel (HybridHash is not a separate graph operation), so
                // this stage adds no framework dispatches.
                let mut hot = StageTask::new(
                    OpKind::Gather,
                    ResTarget::GpuMem,
                    hot_bytes * 2.0 / HBM_RANDOM_EFF,
                );
                hot.launches = 1;
                stages.push(hot);
            }
            stages.push(StageTask::new(
                OpKind::Gather,
                ResTarget::Dram,
                cold_bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::HostToDevice,
                ResTarget::Pcie,
                cold_bytes / PCIE_EFF,
            ));
            // AllToAllv of the remote share.
            let remote = collectives::alltoall_remote_bytes(rows * row_bytes, ctx.n_exec)
                * ctx.strategy.shuffle_imbalance()
                * ctx.comm_scale;
            let (nv, nic) = collectives::split_intra_inter(remote, ctx.n_exec, ctx.per_node);
            comm_idx = stages.len();
            let shuffle_kind = if chain.fused_shuffle_stitch {
                OpKind::ShuffleStitch
            } else {
                OpKind::Shuffle
            };
            if ctx.has_nvlink && ctx.strategy.uses_nvlink() && nv > 0.0 {
                stages.push(StageTask::new(shuffle_kind, ResTarget::NvLink, nv));
                stages.push(StageTask::new(shuffle_kind, ResTarget::Nic, nic / NET_EFF));
            } else {
                stages.push(StageTask::new(
                    shuffle_kind,
                    ResTarget::Nic,
                    (nv + nic) / NET_EFF,
                ));
            }
            if !chain.fused_shuffle_stitch {
                stages.push(StageTask::new(
                    OpKind::Stitch,
                    ResTarget::GpuMem,
                    rows * row_bytes * 2.0,
                ));
            }
        }
    }

    // Expand + pool on device.
    let expanded_bytes = ids * row_bytes;
    stages.push(StageTask::new(
        OpKind::SegmentReduce,
        ResTarget::GpuMem,
        expanded_bytes * 2.0,
    ));
    (stages, comm_idx)
}

/// Plans the backward embedding stages of one chain (gradient exchange and
/// sparse scatter).
pub fn chain_backward(chain: &EmbeddingChain, b: usize, ctx: &PlanContext) -> Vec<StageTask> {
    let ids = b as f64 * chain.ids_per_instance;
    let rows = ids * chain.unique_ratio;
    let row_bytes = chain.dim as f64 * 4.0;
    let mut stages = Vec::with_capacity(3);
    match ctx.strategy.embedding_exchange() {
        EmbeddingExchange::ParameterServer => {
            let wire = rows * row_bytes * ctx.comm_scale;
            stages.push(StageTask::new(
                OpKind::PsPush,
                ResTarget::Nic,
                wire / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::PsPush,
                ResTarget::ServerNic,
                wire / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::EmbeddingScatter,
                ResTarget::ServerDram,
                rows * row_bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
        }
        EmbeddingExchange::Replicated => {
            // Sparse gradients ride the big AllReduce (planned separately);
            // here only the local scatter applies.
            stages.push(StageTask::new(
                OpKind::EmbeddingScatter,
                ResTarget::Dram,
                rows * row_bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
        }
        EmbeddingExchange::AllToAll => {
            let remote = collectives::alltoall_remote_bytes(rows * row_bytes, ctx.n_exec)
                * ctx.strategy.shuffle_imbalance()
                * ctx.comm_scale;
            let (nv, nic) = collectives::split_intra_inter(remote, ctx.n_exec, ctx.per_node);
            if ctx.has_nvlink && ctx.strategy.uses_nvlink() && nv > 0.0 {
                stages.push(StageTask::new(OpKind::AllToAll, ResTarget::NvLink, nv));
                stages.push(StageTask::new(
                    OpKind::AllToAll,
                    ResTarget::Nic,
                    nic / NET_EFF,
                ));
            } else {
                stages.push(StageTask::new(
                    OpKind::AllToAll,
                    ResTarget::Nic,
                    (nv + nic) / NET_EFF,
                ));
            }
            let hit = chain.cache_hit_ratio.clamp(0.0, 1.0);
            stages.push(StageTask::new(
                OpKind::EmbeddingScatter,
                ResTarget::Dram,
                rows * (1.0 - hit) * row_bytes * 2.0 / DRAM_RANDOM_EFF,
            ));
            if hit > 0.0 {
                let mut hot = StageTask::new(
                    OpKind::EmbeddingScatter,
                    ResTarget::GpuMem,
                    rows * hit * row_bytes * 2.0 / HBM_RANDOM_EFF,
                );
                hot.launches = 1;
                stages.push(hot);
            }
        }
    }
    stages
}

/// Forward compute of one interaction module at `b` instances.
pub fn module_forward(m: &InteractionModule, b: usize) -> StageTask {
    StageTask {
        kind: OpKind::InteractionCompute,
        target: ResTarget::GpuSm,
        work: b as f64 * m.flops_per_instance / GPU_EFF,
        launches: m.micro_ops_forward,
    }
}

/// Backward compute of one interaction module.
pub fn module_backward(m: &InteractionModule, b: usize) -> StageTask {
    StageTask {
        kind: OpKind::InteractionCompute,
        target: ResTarget::GpuSm,
        work: b as f64 * m.flops_per_instance * BACKWARD_FLOP_FACTOR / GPU_EFF,
        launches: (m.micro_ops_forward as f64 * OpKind::BACKWARD_OP_FACTOR) as u32,
    }
}

/// Forward MLP compute.
pub fn mlp_forward(mlp: &MlpSpec, b: usize) -> StageTask {
    StageTask {
        kind: OpKind::MlpCompute,
        target: ResTarget::GpuSm,
        work: b as f64 * mlp.flops_per_instance / GPU_EFF,
        launches: mlp.depth() as u32 * OpKind::MlpCompute.micro_ops(),
    }
}

/// Backward MLP compute.
pub fn mlp_backward(mlp: &MlpSpec, b: usize) -> StageTask {
    let mut t = mlp_forward(mlp, b);
    t.work *= BACKWARD_FLOP_FACTOR;
    t.launches = (t.launches as f64 * OpKind::BACKWARD_OP_FACTOR) as u32;
    t
}

/// Dense-parameter synchronization stages, once per iteration per executor.
/// `sparse_grad_bytes` is nonzero only under pure data parallelism, where
/// embedding gradients ride the AllReduce too.
pub fn dense_sync_stages(
    dense_params: f64,
    sparse_grad_bytes: f64,
    ctx: &PlanContext,
) -> Vec<StageTask> {
    let dense_bytes = dense_params * 4.0;
    let mut stages = Vec::new();
    match ctx.strategy.dense_sync() {
        crate::strategy::DenseSync::AllReduce => {
            let payload = (dense_bytes + sparse_grad_bytes) * ctx.comm_scale;
            let per_worker = collectives::allreduce_bytes_per_worker(payload, ctx.n_exec);
            let (nv, nic) = collectives::split_intra_inter(per_worker, ctx.n_exec, ctx.per_node);
            if ctx.has_nvlink && nv > 0.0 {
                stages.push(StageTask::new(OpKind::AllReduce, ResTarget::NvLink, nv));
                stages.push(StageTask::new(
                    OpKind::AllReduce,
                    ResTarget::Nic,
                    nic / NET_EFF,
                ));
            } else if per_worker > 0.0 {
                stages.push(StageTask::new(
                    OpKind::AllReduce,
                    ResTarget::Nic,
                    per_worker / NET_EFF,
                ));
            }
        }
        crate::strategy::DenseSync::ParameterServer => {
            stages.push(StageTask::new(
                OpKind::PsPull,
                ResTarget::Nic,
                dense_bytes / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::PsPull,
                ResTarget::ServerNic,
                dense_bytes / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::PsPush,
                ResTarget::Nic,
                dense_bytes / NET_EFF,
            ));
            stages.push(StageTask::new(
                OpKind::PsPush,
                ResTarget::ServerNic,
                dense_bytes / NET_EFF,
            ));
        }
    }
    stages.push(StageTask::new(
        OpKind::OptimizerApply,
        ResTarget::GpuSm,
        dense_params * 4.0 / GPU_EFF,
    ));
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_graph::EmbeddingChain;

    fn ctx(strategy: Strategy, n: usize, per_node: usize, nvlink: bool) -> PlanContext {
        PlanContext::new(n, per_node, nvlink, strategy)
    }

    fn chain() -> EmbeddingChain {
        let mut c = EmbeddingChain::for_table(0, 16, vec![0, 1], 10.0);
        c.unique_ratio = 0.5;
        c
    }

    #[test]
    fn hybrid_chain_has_alltoall_comm() {
        let (stages, comm) = chain_forward(&chain(), 1000, &ctx(Strategy::Hybrid, 4, 1, false));
        assert_eq!(stages[comm].kind, OpKind::Shuffle);
        assert_eq!(stages[comm].target, ResTarget::Nic);
        // 1000 inst x 10 ids x 0.5 unique x 64B x 3/4 remote / NET_EFF
        let want = 5000.0 * 64.0 * 0.75 / NET_EFF;
        assert!((stages[comm].work - want).abs() < 1.0);
    }

    #[test]
    fn fused_chain_emits_fewer_stages() {
        let mut c = chain();
        let (plain, _) = chain_forward(&c, 100, &ctx(Strategy::Hybrid, 4, 1, false));
        c.fused_unique_partition = true;
        c.fused_shuffle_stitch = true;
        let (fused, _) = chain_forward(&c, 100, &ctx(Strategy::Hybrid, 4, 1, false));
        assert!(fused.len() < plain.len());
        let launches = |v: &[StageTask]| v.iter().map(|s| s.launches as u64).sum::<u64>();
        assert!(launches(&fused) < launches(&plain));
    }

    #[test]
    fn cache_moves_gather_to_device_memory() {
        let mut c = chain();
        c.cache_hit_ratio = 0.8;
        let (stages, _) = chain_forward(&c, 1000, &ctx(Strategy::Hybrid, 4, 1, false));
        let hbm: f64 = stages
            .iter()
            .filter(|s| s.target == ResTarget::GpuMem && s.kind == OpKind::Gather)
            .map(|s| s.work)
            .sum();
        let pcie: f64 = stages
            .iter()
            .filter(|s| s.target == ResTarget::Pcie)
            .map(|s| s.work)
            .sum();
        let (no_cache, _) = chain_forward(&chain(), 1000, &ctx(Strategy::Hybrid, 4, 1, false));
        let pcie0: f64 = no_cache
            .iter()
            .filter(|s| s.target == ResTarget::Pcie)
            .map(|s| s.work)
            .sum();
        assert!(hbm > 0.0);
        assert!(pcie < pcie0 * 0.3, "cache should slash PCIe traffic");
    }

    #[test]
    fn ps_chain_routes_through_server() {
        let (stages, comm) = chain_forward(
            &chain(),
            100,
            &ctx(Strategy::PsAsync { servers: 1 }, 4, 1, false),
        );
        assert!(stages.iter().any(|s| s.target == ResTarget::ServerNic));
        assert!(stages.iter().any(|s| s.target == ResTarget::ServerDram));
        assert_eq!(stages[comm].kind, OpKind::PsPull);
    }

    #[test]
    fn single_node_nvlink_carries_shuffle() {
        let (stages, _) = chain_forward(&chain(), 100, &ctx(Strategy::Hybrid, 8, 8, true));
        let nv: f64 = stages
            .iter()
            .filter(|s| s.target == ResTarget::NvLink)
            .map(|s| s.work)
            .sum();
        let nic: f64 = stages
            .iter()
            .filter(|s| s.target == ResTarget::Nic)
            .map(|s| s.work)
            .sum();
        assert!(nv > 0.0);
        assert_eq!(nic, 0.0, "all peers are local");
    }

    #[test]
    fn dp_chain_is_local_but_allreduce_is_heavy() {
        let c = chain();
        let (stages, _) = chain_forward(&c, 100, &ctx(Strategy::DataParallel, 4, 1, false));
        assert!(stages.iter().all(|s| s.target != ResTarget::Nic));
        let sync = dense_sync_stages(1e6, 5e6, &ctx(Strategy::DataParallel, 4, 1, false));
        let nic: f64 = sync
            .iter()
            .filter(|s| s.target == ResTarget::Nic)
            .map(|s| s.work)
            .sum();
        assert!(nic > 5e6, "sparse grads dominate the DP allreduce");
    }

    #[test]
    fn backward_mirrors_forward_comm() {
        let c = chain();
        let cx = ctx(Strategy::Hybrid, 4, 1, false);
        let bwd = chain_backward(&c, 1000, &cx);
        assert!(bwd.iter().any(|s| s.kind == OpKind::AllToAll));
        assert!(bwd.iter().any(|s| s.kind == OpKind::EmbeddingScatter));
    }

    #[test]
    fn ps_dense_sync_hits_server_nic_twice() {
        let sync = dense_sync_stages(
            1e6,
            0.0,
            &ctx(Strategy::PsAsync { servers: 1 }, 4, 1, false),
        );
        let server_tasks = sync
            .iter()
            .filter(|s| s.target == ResTarget::ServerNic)
            .count();
        assert_eq!(server_tasks, 2, "pull and push");
    }

    #[test]
    fn quantized_comm_halves_wire_bytes() {
        let mut q = ctx(Strategy::Hybrid, 4, 1, false);
        q.comm_scale = 0.5;
        let (full, ci) = chain_forward(&chain(), 1000, &ctx(Strategy::Hybrid, 4, 1, false));
        let (half, _) = chain_forward(&chain(), 1000, &q);
        assert!((half[ci].work - full[ci].work * 0.5).abs() < 1.0);
        // Memory-side work is precision-preserving and unchanged.
        assert_eq!(half[1].work, full[1].work);
    }

    #[test]
    fn module_backward_is_heavier() {
        let m = picasso_graph::InteractionModule {
            kind: picasso_graph::ModuleKind::DnnTower,
            input_fields: vec![0],
            flops_per_instance: 1000.0,
            bytes_per_instance: 10.0,
            params: 10.0,
            output_width: 8,
            micro_ops_forward: 10,
        };
        let f = module_forward(&m, 100);
        let b = module_backward(&m, 100);
        assert!(b.work > f.work);
        assert!(b.launches > f.launches);
    }

    #[test]
    fn single_executor_has_no_comm() {
        let (stages, _) = chain_forward(&chain(), 100, &ctx(Strategy::Hybrid, 1, 1, false));
        let nic: f64 = stages
            .iter()
            .filter(|s| s.target == ResTarget::Nic)
            .map(|s| s.work)
            .sum();
        assert_eq!(nic, 0.0);
        let sync = dense_sync_stages(1e6, 0.0, &ctx(Strategy::Hybrid, 1, 1, false));
        assert!(sync.iter().all(|s| s.target != ResTarget::Nic));
    }
}
