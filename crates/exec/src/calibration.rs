//! Cost-model calibration: predicted stage cost vs. observed simulated time.
//!
//! The scheduler's cost model ([`crate::costs`]) predicts each stage's
//! duration as `launch_overhead + work / rate` on its target resource. The
//! engine then adds everything the closed-form model leaves out — channel
//! queueing and congestion slowdown — so the gap between prediction and the
//! observed record is exactly the run's emergent contention. This module
//! aggregates that gap per resource class and per operator kind, both for the
//! run report (`calibration` section) and as error histograms in the metrics
//! registry. Everything is derived after the run from immutable outputs, so
//! calibration is observation-only.

use crate::scheduler::SimulationOutput;
use picasso_graph::OpKind;
use picasso_obs::{Json, MetricKind, MetricsRegistry};
use picasso_sim::{TaskCategory, TaskId};
use std::collections::BTreeMap;

/// Predicted cost of one scheduled stage, recorded while the graph is built.
#[derive(Debug, Clone, Copy)]
pub struct CostRecord {
    /// Engine task the prediction is for.
    pub task: TaskId,
    /// Logical operator the stage implements.
    pub kind: OpKind,
    /// Model-predicted duration, seconds (overhead + work / rate).
    pub predicted_secs: f64,
}

/// Accumulated prediction error for one group of stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalibrationStats {
    /// Stages aggregated.
    pub tasks: u64,
    /// Total predicted duration, seconds.
    pub predicted_secs: f64,
    /// Total observed duration, seconds.
    pub observed_secs: f64,
    /// Sum of per-stage absolute relative errors.
    pub sum_abs_rel_error: f64,
    /// Largest per-stage absolute relative error.
    pub max_abs_rel_error: f64,
}

impl CalibrationStats {
    fn observe(&mut self, predicted: f64, observed: f64) {
        self.tasks += 1;
        self.predicted_secs += predicted;
        self.observed_secs += observed;
        if let Some(err) = rel_error(predicted, observed) {
            self.sum_abs_rel_error += err.abs();
            self.max_abs_rel_error = self.max_abs_rel_error.max(err.abs());
        }
    }

    /// Mean absolute relative error across stages.
    pub fn mean_abs_rel_error(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.sum_abs_rel_error / self.tasks as f64
        }
    }

    /// Aggregate bias `observed / predicted - 1`: positive when the model
    /// underestimates (contention dominates), negative when it overestimates.
    pub fn bias(&self) -> f64 {
        rel_error(self.predicted_secs, self.observed_secs).unwrap_or(0.0)
    }
}

/// Relative error `(observed - predicted) / predicted`; `None` when the
/// prediction is zero or either side is non-finite.
fn rel_error(predicted: f64, observed: f64) -> Option<f64> {
    if predicted <= 0.0 || !predicted.is_finite() || !observed.is_finite() {
        return None;
    }
    Some((observed - predicted) / predicted)
}

/// Calibration of the cost model against one finished simulation.
#[derive(Debug, Clone, Default)]
pub struct CalibrationReport {
    /// Error stats per resource class (the task's attribution category).
    pub per_class: BTreeMap<TaskCategory, CalibrationStats>,
    /// Error stats per logical operator kind (`Debug` name).
    pub per_kind: BTreeMap<String, CalibrationStats>,
}

impl CalibrationReport {
    /// Joins the scheduler's predicted costs with the engine's observed
    /// records.
    pub fn from_simulation(out: &SimulationOutput) -> CalibrationReport {
        let mut observed: BTreeMap<usize, (f64, TaskCategory)> = BTreeMap::new();
        for rec in &out.result.records {
            observed.insert(
                rec.task.0,
                ((rec.end - rec.start).as_secs_f64(), rec.category),
            );
        }
        let mut report = CalibrationReport::default();
        for cost in &out.costs {
            let Some(&(secs, category)) = observed.get(&cost.task.0) else {
                continue;
            };
            report
                .per_class
                .entry(category)
                .or_default()
                .observe(cost.predicted_secs, secs);
            report
                .per_kind
                .entry(format!("{:?}", cost.kind))
                .or_default()
                .observe(cost.predicted_secs, secs);
        }
        report
    }

    /// True when no stage predictions were joined (degenerate runs).
    pub fn is_empty(&self) -> bool {
        self.per_class.is_empty()
    }

    /// JSON form: `{"classes": {...}, "kinds": {...}}` with per-group
    /// predicted/observed totals, bias, and error summaries.
    pub fn to_json(&self) -> Json {
        let stats_json = |s: &CalibrationStats| {
            Json::obj([
                ("tasks", Json::UInt(s.tasks)),
                ("predicted_secs", Json::Num(s.predicted_secs)),
                ("observed_secs", Json::Num(s.observed_secs)),
                ("bias", Json::Num(s.bias())),
                ("mean_abs_rel_error", Json::Num(s.mean_abs_rel_error())),
                ("max_abs_rel_error", Json::Num(s.max_abs_rel_error)),
            ])
        };
        let classes = Json::Obj(
            self.per_class
                .iter()
                .map(|(cat, stats)| (cat.to_string(), stats_json(stats)))
                .collect(),
        );
        let kinds = Json::Obj(
            self.per_kind
                .iter()
                .map(|(kind, stats)| (kind.clone(), stats_json(stats)))
                .collect(),
        );
        Json::obj([("classes", classes), ("kinds", kinds)])
    }
}

/// Histogram bounds for per-stage absolute relative error.
pub const REL_ERROR_BOUNDS: [f64; 7] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0];

/// Records per-stage absolute relative errors into `registry` as the
/// `exec_cost_rel_error` histogram, labeled by resource class.
pub fn export_metrics(out: &SimulationOutput, registry: &MetricsRegistry) {
    registry.describe(
        "exec_cost_rel_error",
        MetricKind::Histogram,
        "Absolute relative error of the stage cost model, by class",
    );
    registry.histogram_buckets("exec_cost_rel_error", &REL_ERROR_BOUNDS);
    let mut observed: BTreeMap<usize, (f64, TaskCategory)> = BTreeMap::new();
    for rec in &out.result.records {
        observed.insert(
            rec.task.0,
            ((rec.end - rec.start).as_secs_f64(), rec.category),
        );
    }
    for cost in &out.costs {
        let Some(&(secs, category)) = observed.get(&cost.task.0) else {
            continue;
        };
        if let Some(err) = rel_error(cost.predicted_secs, secs) {
            registry.histogram_observe(
                "exec_cost_rel_error",
                &[("class", &category.to_string())],
                err.abs(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{simulate, SimConfig};
    use crate::strategy::Strategy;
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn sample_output() -> SimulationOutput {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let cfg = SimConfig {
            batch_per_executor: 1024,
            iterations: 2,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        simulate(&spec, Strategy::Hybrid, &cfg).unwrap()
    }

    #[test]
    fn rel_error_guards_degenerate_predictions() {
        assert_eq!(rel_error(1.0, 1.5), Some(0.5));
        assert_eq!(rel_error(0.0, 1.0), None);
        assert_eq!(rel_error(-1.0, 1.0), None);
        assert_eq!(rel_error(1.0, f64::NAN), None);
    }

    #[test]
    fn calibration_joins_every_predicted_stage() {
        let out = sample_output();
        assert!(!out.costs.is_empty(), "scheduler should record predictions");
        let report = CalibrationReport::from_simulation(&out);
        assert!(!report.is_empty());
        let total: u64 = report.per_class.values().map(|s| s.tasks).sum();
        assert_eq!(total, out.costs.len() as u64);
        let by_kind: u64 = report.per_kind.values().map(|s| s.tasks).sum();
        assert_eq!(by_kind, total);
        // The model omits queueing/congestion, so the aggregate can only be
        // underestimated or exact — never overestimated.
        for (cat, stats) in &report.per_class {
            assert!(
                stats.bias() >= -1e-9,
                "{cat}: model overestimated, bias {}",
                stats.bias()
            );
            assert!(stats.predicted_secs > 0.0);
            assert!(stats.observed_secs >= stats.predicted_secs - 1e-9);
        }
    }

    #[test]
    fn calibration_json_has_classes_and_kinds() {
        let out = sample_output();
        let json = CalibrationReport::from_simulation(&out).to_json();
        let Some(Json::Obj(classes)) = json.get("classes") else {
            panic!("classes must be an object");
        };
        let (_, first) = classes.first().expect("nonempty classes");
        assert!(first.get("tasks").and_then(Json::as_u64).unwrap() > 0);
        assert!(first.get("bias").and_then(Json::as_f64).is_some());
        let Some(Json::Obj(kinds)) = json.get("kinds") else {
            panic!("kinds must be an object");
        };
        assert!(!kinds.is_empty());
    }

    #[test]
    fn export_metrics_records_error_histogram() {
        let out = sample_output();
        let registry = MetricsRegistry::new();
        export_metrics(&out, &registry);
        let snap = registry.snapshot();
        let total: u64 = snap
            .histograms
            .iter()
            .filter(|((name, _), _)| name == "exec_cost_rel_error")
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(total, out.costs.len() as u64);
    }
}
