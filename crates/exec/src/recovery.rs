//! Fault-tolerant training: checkpoint cadence, deterministic fault
//! injection, heartbeat-based crash detection, restore, and batch-cursor
//! rewind.
//!
//! Production WDL jobs run for days on preemptible clusters; XDL2 (the
//! productized PICASSO) survives worker crashes by restoring the last
//! valid checkpoint and replaying the input stream. This module drives the
//! real CPU trainer ([`CtrModel`]) through a simulated-time fault schedule
//! ([`FaultPlan`]) and proves the recovery invariant end to end: a run
//! that crashes and restores finishes with **bit-identical** model state
//! (dense parameters, optimizer accumulators, and embedding rows) to an
//! uninterrupted run of the same seed.
//!
//! The determinism argument has three legs:
//!
//! 1. checkpoints capture the exact materialized-row set and dense bits
//!    ([`TableSnapshot`] / `CtrModel::dense_snapshot`), and restore ends by
//!    marking tables clean — the same dirty-set state an uninterrupted run
//!    has right after writing that checkpoint;
//! 2. the batch cursor is rewound by recreating the seeded
//!    [`BatchGenerator`] and replaying it to the restored step, so every
//!    post-restore batch is identical;
//! 3. wall-clock effects (detection latency, restore time, retry backoff)
//!    live on a simulated clock that never feeds back into the math.

use crate::trainer::TrainError;
use picasso_ckpt::{CheckpointKind, CheckpointStore, Manifest};
use picasso_data::{BatchGenerator, DatasetSpec};
use picasso_embedding::TableSnapshot;
use picasso_lint::{Diagnostic, Severity, Span};
use picasso_obs::detect::{
    Anomaly, AnomalyKind, QueueDepthDetector, SlopeDetector, StragglerDetector,
};
use picasso_obs::flight::{FlightConfig, FlightDump, FlightRecorder, FlightStats};
use picasso_obs::json::Json;
use picasso_obs::{ChromeTrace, MetricKind, MetricsRegistry};
use picasso_sim::{FaultKind, FaultPlan};
use picasso_train::{CtrModel, Variant};
use std::sync::Arc;

/// Simulated compute time of one training step.
const STEP_S: f64 = 0.05;
/// Simulated time of the per-step gradient collective.
const COLLECTIVE_S: f64 = 0.01;
/// Checkpoint write bandwidth (bytes/s) on the simulated clock.
const CKPT_WRITE_BPS: f64 = 2e9;
/// Checkpoint read bandwidth (bytes/s) during restore.
const RESTORE_BPS: f64 = 4e9;
/// Fixed restore latency (manifest scan, process respawn).
const RESTORE_LATENCY_S: f64 = 0.005;
/// How much simulated time one iteration of NIC outage covers.
const NIC_ITER_S: f64 = STEP_S + COLLECTIVE_S;
/// Base delay of the exponential backoff for failed collectives.
const BACKOFF_BASE_S: f64 = 0.05;

/// Configuration of one fault-tolerant training run.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Training iterations to run.
    pub iterations: u64,
    /// Instances per batch.
    pub batch_size: usize,
    /// Seed for the model init and the batch stream.
    pub seed: u64,
    /// Which CTR model variant to train.
    pub variant: Variant,
    /// Learning rate.
    pub lr: f32,
    /// Checkpoint every this many iterations; `0` disables checkpointing.
    pub ckpt_every: u64,
    /// Every `full_every`-th checkpoint is full; the rest are incremental
    /// deltas chained to the previous checkpoint.
    pub full_every: u64,
    /// How many full checkpoints retention keeps (chains included).
    pub keep_full: usize,
    /// The deterministic fault schedule.
    pub fault_plan: FaultPlan,
    /// How long the heartbeat monitor waits before declaring a worker dead.
    pub heartbeat_timeout_s: f64,
    /// Bounded retry budget for failed collectives.
    pub max_retries: u32,
    /// Synchronous workers the anomaly detectors compare across. Only the
    /// detection layer reads this; the training math is single-trainer.
    pub workers: usize,
    /// Flight-recorder shape (ring capacity, post-mortem window, sampling).
    /// The recorder observes the simulated clock and never feeds back into
    /// the run.
    pub flight: FlightConfig,
}

impl Default for RecoveryOptions {
    fn default() -> RecoveryOptions {
        RecoveryOptions {
            iterations: 20,
            batch_size: 32,
            seed: 17,
            variant: Variant::Deep,
            lr: 0.05,
            ckpt_every: 0,
            full_every: 4,
            keep_full: 2,
            fault_plan: FaultPlan::none(),
            heartbeat_timeout_s: 0.25,
            max_retries: 6,
            workers: 4,
            flight: FlightConfig::default(),
        }
    }
}

/// One observed crash-and-restore cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration the worker crashed at (work of this iteration is lost).
    pub at_iter: u64,
    /// Step the restored checkpoint captured (`0` for a scratch restart).
    pub restored_step: u64,
    /// Iterations of work lost: `at_iter - restored_step`.
    pub lost_iterations: u64,
    /// Detection + restore time on the simulated clock.
    pub time_to_recover_s: f64,
    /// Shard bytes read during restore.
    pub restored_bytes: u64,
    /// Whether no usable checkpoint existed and training restarted fresh.
    pub from_scratch: bool,
    /// Simulated time the crash was detected at.
    pub at_s: f64,
}

/// One committed checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CkptRecord {
    /// Step the checkpoint captures.
    pub step: u64,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Total shard payload bytes.
    pub bytes: u64,
    /// Shard count.
    pub shards: usize,
    /// Simulated write duration (`bytes / CKPT_WRITE_BPS`).
    pub duration_s: f64,
    /// Simulated time the write started at.
    pub at_s: f64,
}

/// Everything a fault-tolerant run produced.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Iterations the run was configured for.
    pub iterations: u64,
    /// FNV-1a digest of the final model state (dense + embedding rows).
    pub final_digest: u64,
    /// Mean BCE loss of the last completed step.
    pub final_loss: f64,
    /// Total simulated wall-clock of the run.
    pub sim_time_s: f64,
    /// Every crash-and-restore cycle, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Every committed checkpoint, in order (re-writes after a restore
    /// appear again).
    pub checkpoints: Vec<CkptRecord>,
    /// Collective retries spent waiting out NIC outages.
    pub collective_retries: u64,
    /// Manifests `latest_valid` rejected during restores (corruption
    /// fallback evidence).
    pub rejected_manifests: Vec<String>,
    /// Online anomaly detections (straggler z-score, NIC-degradation
    /// slope, queue-depth runaway), deduplicated across crash rewinds.
    pub detections: Vec<Anomaly>,
    /// Flight-recorder lifetime accounting.
    pub flight: FlightStats,
    /// One checksummed post-mortem per detected crash, captured at the
    /// moment of detection (before the restore rewinds anything).
    pub post_mortems: Vec<FlightDump>,
    /// The recorder's trailing window at the end of the run.
    pub flight_dump: FlightDump,
}

impl RecoveryRun {
    /// Total checkpoint shard bytes written.
    pub fn ckpt_bytes(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.bytes).sum()
    }

    /// Total iterations lost to crashes.
    pub fn lost_iterations(&self) -> u64 {
        self.recoveries.iter().map(|r| r.lost_iterations).sum()
    }

    /// Total time spent detecting crashes and restoring state.
    pub fn time_to_recover_s(&self) -> f64 {
        self.recoveries.iter().map(|r| r.time_to_recover_s).sum()
    }

    /// Publishes the recovery counters into a metrics registry.
    pub fn export_metrics(&self, m: &MetricsRegistry) {
        m.describe(
            "recovery_events_total",
            MetricKind::Counter,
            "Worker crashes detected and recovered from",
        );
        m.describe(
            "recovery_lost_iterations_total",
            MetricKind::Counter,
            "Iterations of training work lost to crashes",
        );
        m.describe(
            "recovery_time_to_recover_seconds",
            MetricKind::Gauge,
            "Cumulative detection + restore time on the simulated clock",
        );
        m.describe(
            "ckpt_writes_total",
            MetricKind::Counter,
            "Committed checkpoints by kind",
        );
        m.describe(
            "ckpt_bytes_total",
            MetricKind::Counter,
            "Checkpoint shard bytes written",
        );
        m.describe(
            "ckpt_write_seconds",
            MetricKind::Gauge,
            "Cumulative simulated checkpoint write time",
        );
        m.describe(
            "collective_retries_total",
            MetricKind::Counter,
            "Collective retries spent backing off through NIC outages",
        );
        m.counter_add("recovery_events_total", &[], self.recoveries.len() as u64);
        m.counter_add(
            "recovery_lost_iterations_total",
            &[],
            self.lost_iterations(),
        );
        m.gauge_set(
            "recovery_time_to_recover_seconds",
            &[],
            self.time_to_recover_s(),
        );
        for kind in [CheckpointKind::Full, CheckpointKind::Incremental] {
            let of_kind: Vec<_> = self.checkpoints.iter().filter(|c| c.kind == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            let labels = [("kind", kind.name())];
            m.counter_add("ckpt_writes_total", &labels, of_kind.len() as u64);
            m.counter_add(
                "ckpt_bytes_total",
                &labels,
                of_kind.iter().map(|c| c.bytes).sum(),
            );
        }
        m.gauge_set(
            "ckpt_write_seconds",
            &[],
            self.checkpoints.iter().map(|c| c.duration_s).sum(),
        );
        m.counter_add("collective_retries_total", &[], self.collective_retries);
        m.describe(
            "flight_post_mortems_total",
            MetricKind::Counter,
            "Post-mortem dumps captured at crash detection",
        );
        m.counter_add(
            "flight_post_mortems_total",
            &[],
            self.post_mortems.len() as u64,
        );
        self.flight.export_metrics(m);
        m.describe(
            "anomalies_detected_total",
            MetricKind::Counter,
            "Online anomaly detections by detector kind",
        );
        for kind in [
            AnomalyKind::Straggler,
            AnomalyKind::NicDegradation,
            AnomalyKind::QueueRunaway,
        ] {
            let n = self.detections.iter().filter(|a| a.kind == kind).count();
            if n > 0 {
                let label = kind.to_string();
                m.counter_add("anomalies_detected_total", &[("kind", &label)], n as u64);
            }
        }
    }

    /// Renders the run as a Chrome trace: checkpoint-write and restore
    /// spans plus crash instants.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let ns = |s: f64| (s * 1e9) as u64;
        let mut trace = ChromeTrace::new();
        for c in &self.checkpoints {
            trace.complete(
                "checkpoint",
                &format!("ckpt@{} ({})", c.step, c.kind.name()),
                "checkpoint",
                ns(c.at_s),
                ns(c.at_s + c.duration_s),
                &[
                    ("bytes", &c.bytes.to_string()),
                    ("shards", &c.shards.to_string()),
                ],
            );
        }
        for r in &self.recoveries {
            trace.instant("recovery", &format!("crash@{}", r.at_iter), ns(r.at_s));
            trace.complete(
                "recovery",
                &format!("restore->{}", r.restored_step),
                "recovery",
                ns(r.at_s),
                ns(r.at_s + r.time_to_recover_s),
                &[
                    ("lost_iterations", &r.lost_iterations.to_string()),
                    ("restored_bytes", &r.restored_bytes.to_string()),
                    (
                        "from_scratch",
                        if r.from_scratch { "true" } else { "false" },
                    ),
                ],
            );
        }
        for a in &self.detections {
            trace.instant(
                "anomaly",
                &format!("{}@{}", a.kind, a.at_iter),
                a.at_iter * 1_000_000,
            );
        }
        trace
    }

    /// The JSON payload embedded in the run report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str("recovery_run")),
            ("iterations", Json::UInt(self.iterations)),
            (
                "final_digest",
                Json::str(format!("{:016x}", self.final_digest)),
            ),
            ("final_loss", Json::Num(self.final_loss)),
            ("sim_time_s", Json::Num(self.sim_time_s)),
            ("time_to_recover_s", Json::Num(self.time_to_recover_s())),
            ("lost_iterations", Json::UInt(self.lost_iterations())),
            ("ckpt_bytes", Json::UInt(self.ckpt_bytes())),
            ("collective_retries", Json::UInt(self.collective_retries)),
            (
                "recoveries",
                Json::Arr(
                    self.recoveries
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("at_iter", Json::UInt(r.at_iter)),
                                ("restored_step", Json::UInt(r.restored_step)),
                                ("lost_iterations", Json::UInt(r.lost_iterations)),
                                ("time_to_recover_s", Json::Num(r.time_to_recover_s)),
                                ("restored_bytes", Json::UInt(r.restored_bytes)),
                                ("from_scratch", Json::Bool(r.from_scratch)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "checkpoints",
                Json::Arr(
                    self.checkpoints
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("step", Json::UInt(c.step)),
                                ("snapshot", Json::str(c.kind.name())),
                                ("bytes", Json::UInt(c.bytes)),
                                ("shards", Json::UInt(c.shards as u64)),
                                ("duration_s", Json::Num(c.duration_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rejected_manifests",
                Json::Arr(
                    self.rejected_manifests
                        .iter()
                        .map(|s| Json::str(s.as_str()))
                        .collect(),
                ),
            ),
            (
                "detections",
                Json::Arr(
                    self.detections
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("kind", Json::str(a.kind.to_string())),
                                ("at_iter", Json::UInt(a.at_iter)),
                                (
                                    "worker",
                                    match a.worker {
                                        Some(w) => Json::UInt(w as u64),
                                        None => Json::Null,
                                    },
                                ),
                                ("value", Json::Num(a.value)),
                                ("threshold", Json::Num(a.threshold)),
                            ])
                        })
                        .collect(),
                ),
            ),
            // Deterministic flight fields only: the volatile overhead
            // counter stays out so the report is reproducible.
            (
                "flight",
                Json::obj([
                    ("capacity", Json::UInt(self.flight.capacity as u64)),
                    ("occupancy", Json::UInt(self.flight.occupancy as u64)),
                    ("recorded", Json::UInt(self.flight.recorded)),
                    ("overwritten", Json::UInt(self.flight.overwritten)),
                    ("sampled_out", Json::UInt(self.flight.sampled_out_total())),
                ]),
            ),
            (
                "post_mortems",
                Json::Arr(self.post_mortems.iter().map(FlightDump::to_json).collect()),
            ),
        ])
    }
}

/// Lints a run configuration before training starts.
///
/// Emits the two `run.*` rules from the registry: a fault plan that
/// schedules a crash while checkpointing is disabled, and a checkpoint
/// interval longer than the run itself.
pub fn lint_recovery(opts: &RecoveryOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let schedules_crash = opts
        .fault_plan
        .events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::WorkerCrash { .. }));
    if schedules_crash && opts.ckpt_every == 0 {
        out.push(
            Diagnostic::new(
                "run.fault-without-ckpt",
                Severity::Warn,
                Span::Run("fault-plan".into()),
                "the fault plan schedules a worker crash but checkpointing is disabled",
            )
            .with_hint("pass --ckpt-dir and --ckpt-every so crashes restore instead of restarting"),
        );
    }
    if opts.ckpt_every > opts.iterations {
        out.push(
            Diagnostic::new(
                "run.ckpt-beyond-horizon",
                Severity::Warn,
                Span::Run("ckpt-every".into()),
                format!(
                    "checkpoint interval {} exceeds the {}-iteration run; no checkpoint will ever be written",
                    opts.ckpt_every, opts.iterations
                ),
            )
            .with_hint("lower --ckpt-every below the iteration count"),
        );
    }
    out
}

/// Lints a finished run's flight-recorder accounting: fires
/// `run.flight-overflow` when ring wraparound overwrote admitted events,
/// meaning a post-mortem would be missing history.
pub fn lint_flight(stats: &FlightStats) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if stats.overwritten > 0 {
        out.push(
            Diagnostic::new(
                "run.flight-overflow",
                Severity::Warn,
                Span::Run("flight-recorder".into()),
                format!(
                    "flight recorder overwrote {} of {} admitted events (capacity {}); \
                     post-mortems lose the overwritten history",
                    stats.overwritten, stats.recorded, stats.capacity
                ),
            )
            .with_hint("raise the flight-recorder capacity or sample noisy categories harder"),
        );
    }
    out
}

/// Deterministic jitter hash (splitmix64) for detection-latency noise.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unrec(what: &str, e: impl std::fmt::Display) -> TrainError {
    TrainError::Unrecoverable(format!("{what}: {e}"))
}

/// Writes one checkpoint of `model` at `step` and marks tables clean.
fn write_checkpoint(
    store: &CheckpointStore,
    model: &mut CtrModel,
    step: u64,
    kind: CheckpointKind,
    parent: Option<u64>,
) -> Result<(u64, usize), TrainError> {
    let mut w = store
        .begin(step, kind, parent)
        .map_err(|e| unrec("checkpoint begin", e))?;
    w.add_shard("dense", &model.dense_snapshot())
        .map_err(|e| unrec("checkpoint dense shard", e))?;
    for group in model.table_groups() {
        let table = model.table(group).expect("group came from table_groups");
        let snap = match kind {
            CheckpointKind::Full => TableSnapshot::full(table),
            CheckpointKind::Incremental => TableSnapshot::dirty(table),
        };
        w.add_shard(&format!("table{group}"), &snap.encode())
            .map_err(|e| unrec("checkpoint table shard", e))?;
    }
    let summary = w.commit().map_err(|e| unrec("checkpoint commit", e))?;
    model.mark_tables_clean();
    Ok((summary.bytes, summary.shards))
}

/// Restores `model` from `manifest` (base-first `chain` of table deltas,
/// dense bits from the final manifest). Returns shard bytes read.
fn restore_model(
    store: &CheckpointStore,
    model: &mut CtrModel,
    manifest: &Manifest,
    chain: &[Manifest],
) -> Result<u64, TrainError> {
    let mut bytes = 0u64;
    for (i, link) in chain.iter().enumerate() {
        for group in model.table_groups() {
            let name = format!("table{group}");
            let payload = store
                .read_shard(link, &name)
                .map_err(|e| unrec("restore table shard", e))?;
            bytes += payload.len() as u64;
            let snap =
                TableSnapshot::decode(&payload).map_err(|e| unrec("decode table shard", e))?;
            let table = model
                .table_mut(group)
                .expect("group came from table_groups");
            if i == 0 {
                snap.restore_full(table);
            } else {
                snap.apply(table);
            }
        }
    }
    let dense = store
        .read_shard(manifest, "dense")
        .map_err(|e| unrec("restore dense shard", e))?;
    bytes += dense.len() as u64;
    model
        .restore_dense(&dense)
        .map_err(|e| unrec("decode dense shard", e))?;
    Ok(bytes)
}

/// Runs the fault-tolerant training loop.
///
/// With `store: None` checkpointing is disabled; a crash then restarts
/// training from scratch (iteration 0) with the identical seeded init, so
/// the run still finishes — it just loses all progress.
///
/// Errors with [`TrainError::Unrecoverable`] when the checkpoint store is
/// unusable or a NIC outage outlasts the bounded retry budget.
pub fn run_recovery(
    data: &Arc<DatasetSpec>,
    store: Option<&CheckpointStore>,
    opts: &RecoveryOptions,
) -> Result<RecoveryRun, TrainError> {
    let plan = &opts.fault_plan;
    let full_every = opts.full_every.max(1);
    let mut fired = vec![false; plan.events.len()];

    let mut model = CtrModel::new(data, opts.variant, opts.lr, opts.seed);
    let mut gen = BatchGenerator::new(Arc::clone(data), opts.seed);
    let mut step: u64 = 0;
    let mut t = 0.0f64;
    let mut last_loss = f64::NAN;

    // Active degradation windows: (first_iter, one_past_last_iter, slowdown)
    // — straggler windows also carry the slow worker's index so the
    // detection layer can attribute per-worker latencies.
    let mut nic_windows: Vec<(u64, u64, f64)> = Vec::new();
    let mut slow_windows: Vec<(u64, u64, usize, f64)> = Vec::new();
    let mut nic_outage_until: Option<f64> = None;

    let mut recoveries = Vec::new();
    let mut checkpoints = Vec::new();
    let mut collective_retries = 0u64;
    let mut rejected_manifests = Vec::new();

    // The always-on flight recorder: bounded, fed from the simulated
    // clock, write-only — crashing leaves its trailing window behind as a
    // checksummed post-mortem without perturbing the run.
    let mut flight = FlightRecorder::with_config(&opts.flight);
    let mut post_mortems: Vec<FlightDump> = Vec::new();
    let ns = |s: f64| (s * 1e9).round() as u64;

    // Online anomaly detection over the per-step metrics stream. Detectors
    // only *observe* the simulated latencies — nothing they produce feeds
    // back into timing or the model, so the run stays bit-identical with
    // detection on. Crash rewinds replay iterations, so detections dedup
    // on (kind, worker, iteration).
    let straggler_det = StragglerDetector::default();
    let mut slope_det = SlopeDetector::new(4, 0.5 * COLLECTIVE_S);
    let queue_det = QueueDepthDetector::new(2);
    let mut detections: Vec<Anomaly> = Vec::new();
    let mut seen_detections: std::collections::BTreeSet<(AnomalyKind, Option<usize>, u64)> =
        std::collections::BTreeSet::new();
    let mut record = |detections: &mut Vec<Anomaly>, a: Anomaly| {
        if seen_detections.insert((a.kind, a.worker, a.at_iter)) {
            detections.push(a);
        }
    };
    // The detector panel compares at least every worker a straggler event
    // targets, even if the configured panel is smaller.
    let panel = plan
        .events
        .iter()
        .filter_map(|e| match e.kind {
            FaultKind::Straggler { worker, .. } => Some(worker + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
        .max(opts.workers.max(2));

    while step < opts.iterations {
        // Inject faults scheduled for the iteration about to execute. Each
        // event fires exactly once: rewinding the cursor past its iteration
        // must not re-trigger it.
        let mut crashed = false;
        for (i, event) in plan.events.iter().enumerate() {
            if fired[i] || event.at_iter != step {
                continue;
            }
            fired[i] = true;
            match event.kind {
                FaultKind::WorkerCrash { .. } => crashed = true,
                FaultKind::NicDegrade { factor_pct, iters } => {
                    flight.fault("nic-degrade", step, ns(t));
                    if factor_pct == 0 {
                        // Full outage: no collective completes until the
                        // window has passed on the simulated clock.
                        nic_outage_until = Some(t + iters as f64 * NIC_ITER_S);
                    } else {
                        nic_windows.push((step, step + iters as u64, 100.0 / factor_pct as f64));
                    }
                }
                FaultKind::Straggler {
                    worker,
                    factor_pct,
                    iters,
                } => {
                    flight.fault("straggler", step, ns(t));
                    slow_windows.push((
                        step,
                        step + iters as u64,
                        worker,
                        100.0 / factor_pct as f64,
                    ));
                }
            }
        }

        if crashed {
            // Heartbeat detection: timeout plus deterministic jitter.
            let jitter_ms = splitmix64(plan.seed ^ step) % 100;
            let mut ttr = opts.heartbeat_timeout_s + jitter_ms as f64 * 1e-3;
            let crashed_at = step;
            // Crash detection is the flight recorder's moment: record the
            // fault and freeze the trailing window — which still ends with
            // the last causal task executed before the crash — into a
            // checksummed post-mortem before the restore rewinds anything.
            flight.fault("crash", crashed_at, ns(t));
            post_mortems.push(flight.post_mortem());
            let mut restored_step = 0u64;
            let mut restored_bytes = 0u64;
            let mut from_scratch = true;
            if let Some(store) = store {
                match store.latest_valid().map_err(|e| unrec("scan store", e))? {
                    Some((manifest, chain, rejected)) => {
                        rejected_manifests.extend(rejected);
                        model = CtrModel::new(data, opts.variant, opts.lr, opts.seed);
                        restored_bytes = restore_model(store, &mut model, &manifest, &chain)?;
                        restored_step = manifest.step;
                        from_scratch = false;
                    }
                    None => model = CtrModel::new(data, opts.variant, opts.lr, opts.seed),
                }
            } else {
                model = CtrModel::new(data, opts.variant, opts.lr, opts.seed);
            }
            ttr += restored_bytes as f64 / RESTORE_BPS + RESTORE_LATENCY_S;
            // Rewind the deterministic batch cursor to the restored step.
            gen = BatchGenerator::new(Arc::clone(data), opts.seed);
            for _ in 0..restored_step {
                gen.next_batch(opts.batch_size);
            }
            step = restored_step;
            t += ttr;
            // The rewind replays iterations whose collective latencies the
            // slope detector already saw; a stale window would manufacture
            // a phantom trend across the discontinuity.
            slope_det.reset();
            flight.recovery("restore", restored_step, ns(t), ttr);
            recoveries.push(RecoveryEvent {
                at_iter: crashed_at,
                restored_step,
                lost_iterations: crashed_at - restored_step,
                time_to_recover_s: ttr,
                restored_bytes,
                from_scratch,
                at_s: t - ttr,
            });
            continue;
        }

        // The real training step (synchronous semantics).
        let step_start = t;
        flight.span_open("iteration", step, ns(step_start));
        let batch = gen.next_batch(opts.batch_size);
        let (stats, grads) = model.step(&batch, data);
        model.apply(&grads);
        last_loss = stats.loss;

        // Simulated-clock accounting: compute, then the collective.
        let slow_mult: f64 = slow_windows
            .iter()
            .filter(|(a, b, _, _)| (*a..*b).contains(&step))
            .map(|(_, _, _, m)| m)
            .product();
        let nic_mult: f64 = nic_windows
            .iter()
            .filter(|(a, b, _)| (*a..*b).contains(&step))
            .map(|(_, _, m)| m)
            .product();
        let compute_end = t + STEP_S * slow_mult;
        let mut collective_start = compute_end;
        let mut backoff_attempts = 0u32;
        if let Some(outage_end) = nic_outage_until {
            if collective_start < outage_end {
                // Bounded exponential backoff until the outage passes.
                let mut attempt = 0u32;
                while collective_start < outage_end {
                    if attempt >= opts.max_retries {
                        return Err(TrainError::Unrecoverable(format!(
                            "collective at iteration {step} failed {attempt} retries; \
                             NIC outage outlasts the retry budget"
                        )));
                    }
                    collective_start += BACKOFF_BASE_S * f64::powi(2.0, attempt as i32);
                    attempt += 1;
                    collective_retries += 1;
                }
                backoff_attempts = attempt;
                nic_outage_until = None;
            }
        }
        t = collective_start + COLLECTIVE_S * nic_mult;

        // The step's causal tasks and metrics, on the simulated clock.
        flight.task("compute", step, ns(compute_end), compute_end - step_start);
        flight.task("collective", step, ns(t), t - compute_end);
        flight.metric("loss", step, ns(t), stats.loss);
        flight.span_close("iteration", step, ns(t), t - step_start);

        // Feed the anomaly detectors the same latencies the simulated
        // clock just charged. The straggler detector sees the synchronous
        // panel's per-worker step times (only the faulted worker carries
        // its window's slowdown); the slope detector sees the end-to-end
        // collective latency; the queue detector sees how deep the backoff
        // queue went on this iteration.
        let worker_latencies: Vec<f64> = (0..panel)
            .map(|w| {
                let m: f64 = slow_windows
                    .iter()
                    .filter(|(a, b, sw, _)| (*a..*b).contains(&step) && *sw == w)
                    .map(|(_, _, _, m)| m)
                    .product();
                STEP_S * m
            })
            .collect();
        for a in straggler_det.observe(step, &worker_latencies) {
            record(&mut detections, a);
        }
        if let Some(a) = slope_det.observe(step, t - compute_end) {
            record(&mut detections, a);
        }
        if let Some(a) = queue_det.observe(step, backoff_attempts as u64) {
            record(&mut detections, a);
        }

        step += 1;

        // Checkpoint cadence. The kind is derived purely from the step so
        // a post-restore re-write classifies identically to the first run.
        if let Some(store) = store {
            if opts.ckpt_every > 0 && step.is_multiple_of(opts.ckpt_every) {
                let ordinal = step / opts.ckpt_every;
                let kind = if (ordinal - 1).is_multiple_of(full_every) {
                    CheckpointKind::Full
                } else {
                    CheckpointKind::Incremental
                };
                let parent = match kind {
                    CheckpointKind::Full => None,
                    CheckpointKind::Incremental => Some(step - opts.ckpt_every),
                };
                let (bytes, shards) = write_checkpoint(store, &mut model, step, kind, parent)?;
                let duration_s = bytes as f64 / CKPT_WRITE_BPS;
                checkpoints.push(CkptRecord {
                    step,
                    kind,
                    bytes,
                    shards,
                    duration_s,
                    at_s: t,
                });
                flight.recovery("checkpoint", step, ns(t), duration_s);
                t += duration_s;
                if kind == CheckpointKind::Full {
                    store.gc(opts.keep_full).map_err(|e| unrec("gc", e))?;
                }
            }
        }
    }

    Ok(RecoveryRun {
        iterations: opts.iterations,
        final_digest: model.state_digest(),
        final_loss: last_loss,
        sim_time_s: t,
        recoveries,
        checkpoints,
        collective_retries,
        rejected_manifests,
        detections,
        flight: flight.stats(),
        flight_dump: flight.post_mortem(),
        post_mortems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_train::trainer::auc_datasets;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("picasso-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("open temp store")
    }

    fn opts(ckpt_every: u64, plan: &str) -> RecoveryOptions {
        RecoveryOptions {
            iterations: 12,
            batch_size: 16,
            seed: 23,
            ckpt_every,
            full_every: 3,
            fault_plan: FaultPlan::parse(plan).expect("plan parses"),
            ..RecoveryOptions::default()
        }
    }

    #[test]
    fn crash_recover_matches_uninterrupted_run_bit_for_bit() {
        let data = auc_datasets::criteo_like();
        let baseline = run_recovery(&data, None, &opts(0, "seed=1")).expect("baseline");
        assert!(baseline.recoveries.is_empty());

        let store = temp_store("bitident");
        let faulty =
            run_recovery(&data, Some(&store), &opts(2, "seed=1;crash@7")).expect("faulty run");
        assert_eq!(faulty.recoveries.len(), 1);
        let rec = &faulty.recoveries[0];
        assert_eq!(rec.at_iter, 7);
        assert_eq!(
            rec.restored_step, 6,
            "crash@7 restores the step-6 checkpoint"
        );
        assert_eq!(rec.lost_iterations, 1);
        assert!(!rec.from_scratch);
        assert!(rec.time_to_recover_s > 0.0);
        assert_eq!(
            faulty.final_digest, baseline.final_digest,
            "recovered run must end in bit-identical model state"
        );
        assert!(faulty.sim_time_s > baseline.sim_time_s);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn crash_without_checkpoints_restarts_from_scratch_and_still_converges_identically() {
        let data = auc_datasets::criteo_like();
        let baseline = run_recovery(&data, None, &opts(0, "seed=2")).expect("baseline");
        let faulty = run_recovery(&data, None, &opts(0, "seed=2;crash@5")).expect("faulty");
        let rec = &faulty.recoveries[0];
        assert!(rec.from_scratch);
        assert_eq!(rec.restored_step, 0);
        assert_eq!(rec.lost_iterations, 5);
        assert_eq!(faulty.final_digest, baseline.final_digest);
    }

    #[test]
    fn repeated_crashes_each_fire_once() {
        let data = auc_datasets::criteo_like();
        let store = temp_store("twice");
        let run =
            run_recovery(&data, Some(&store), &opts(2, "seed=3;crash@4;crash@9")).expect("run");
        assert_eq!(run.recoveries.len(), 2);
        assert_eq!(run.recoveries[0].at_iter, 4);
        assert_eq!(run.recoveries[1].at_iter, 9);
        let clean = run_recovery(&data, None, &opts(0, "seed=3")).expect("clean");
        assert_eq!(run.final_digest, clean.final_digest);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn incremental_checkpoints_are_strictly_smaller_than_full_on_skewed_ids() {
        // Same training run twice: one all-full cadence, one delta-chained.
        // At every shared step the delta (rows touched since the previous
        // checkpoint) must be strictly smaller than the full (every
        // materialized row so far) — the Zipf stream keeps revisiting hot
        // ids without materializing many new ones.
        let data = auc_datasets::criteo_like();
        let full_store = temp_store("allfull");
        let mut all_full = opts(2, "seed=4");
        all_full.full_every = 1;
        let fulls = run_recovery(&data, Some(&full_store), &all_full).expect("full run");

        let delta_store = temp_store("deltachain");
        let mut chained = opts(2, "seed=4");
        chained.full_every = 1000;
        let deltas = run_recovery(&data, Some(&delta_store), &chained).expect("delta run");

        assert_eq!(fulls.final_digest, deltas.final_digest);
        let mut compared = 0;
        for (f, d) in fulls.checkpoints.iter().zip(&deltas.checkpoints) {
            assert_eq!(f.step, d.step);
            if d.kind != CheckpointKind::Incremental {
                continue;
            }
            assert!(
                d.bytes < f.bytes,
                "step {}: delta ({} B) must undercut the full ({} B)",
                d.step,
                d.bytes,
                f.bytes
            );
            compared += 1;
        }
        assert!(compared >= 4, "expected several delta/full pairs");
        let _ = std::fs::remove_dir_all(full_store.dir());
        let _ = std::fs::remove_dir_all(delta_store.dir());
    }

    #[test]
    fn nic_outage_exhausting_the_retry_budget_is_unrecoverable() {
        let data = auc_datasets::criteo_like();
        let mut o = opts(0, "seed=5;nic@3:p0:i40");
        o.max_retries = 2;
        let err = run_recovery(&data, None, &o).expect_err("outage must exhaust retries");
        assert!(matches!(err, TrainError::Unrecoverable(_)));
        assert!(err.to_string().contains("retry budget"));
    }

    #[test]
    fn nic_outage_within_the_retry_budget_is_absorbed_by_backoff() {
        let data = auc_datasets::criteo_like();
        let clean = run_recovery(&data, None, &opts(0, "seed=6")).expect("clean");
        let degraded = run_recovery(&data, None, &opts(0, "seed=6;nic@3:p0:i2")).expect("run");
        assert!(degraded.collective_retries > 0);
        assert!(degraded.sim_time_s > clean.sim_time_s);
        assert_eq!(degraded.final_digest, clean.final_digest);
    }

    #[test]
    fn stragglers_and_nic_degradation_stretch_time_without_changing_math() {
        let data = auc_datasets::criteo_like();
        let clean = run_recovery(&data, None, &opts(0, "seed=7")).expect("clean");
        let slow = run_recovery(
            &data,
            None,
            &opts(0, "seed=7;slow@2:w0:p50:i4;nic@6:p25:i2"),
        )
        .expect("slow");
        assert!(slow.sim_time_s > clean.sim_time_s);
        assert_eq!(slow.final_digest, clean.final_digest);
    }

    #[test]
    fn recovery_metrics_land_in_registry_report_and_trace() {
        let data = auc_datasets::criteo_like();
        let store = temp_store("obs");
        let run = run_recovery(&data, Some(&store), &opts(2, "seed=8;crash@5")).expect("run");

        let m = MetricsRegistry::new();
        run.export_metrics(&m);
        assert_eq!(m.counter_value("recovery_events_total", &[]), 1);
        assert_eq!(
            m.counter_value("recovery_lost_iterations_total", &[]),
            run.lost_iterations()
        );
        assert!(m.counter_value("ckpt_bytes_total", &[("kind", "full")]) > 0);

        let doc = run.to_json();
        assert!(doc.get("time_to_recover_s").is_some());
        assert_eq!(
            doc.get("lost_iterations").and_then(Json::as_u64),
            Some(run.lost_iterations())
        );
        assert_eq!(
            doc.get("ckpt_bytes").and_then(Json::as_u64),
            Some(run.ckpt_bytes())
        );

        let trace = run.chrome_trace().to_json();
        assert!(trace.contains("restore->"));
        assert!(trace.contains("crash@5"));
        assert!(trace.contains("ckpt@"));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn lint_flags_faults_without_ckpt_and_oversized_intervals() {
        let o = opts(0, "seed=9;crash@3");
        let diags = lint_recovery(&o);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "run.fault-without-ckpt");
        assert_eq!(diags[0].span, Span::Run("fault-plan".into()));

        let o = opts(99, "seed=9");
        let diags = lint_recovery(&o);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "run.ckpt-beyond-horizon");

        assert!(lint_recovery(&opts(4, "seed=9;crash@3")).is_empty());
    }

    #[test]
    fn retention_never_breaks_the_chain_a_restore_needs() {
        let data = auc_datasets::criteo_like();
        let store = temp_store("gc");
        let mut o = opts(1, "seed=10;crash@11");
        o.keep_full = 1;
        let run = run_recovery(&data, Some(&store), &o).expect("run");
        // crash@11 restores the step-11 incremental whose chain bottoms at
        // the step-10 full — the one chain GC is obliged to keep.
        assert_eq!(run.recoveries[0].restored_step, 11);
        let clean = run_recovery(&data, None, &opts(0, "seed=10")).expect("clean");
        assert_eq!(run.final_digest, clean.final_digest);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fault_free_run_raises_no_anomalies() {
        let data = auc_datasets::criteo_like();
        let run = run_recovery(&data, None, &opts(0, "seed=20")).expect("clean");
        assert!(
            run.detections.is_empty(),
            "zero false positives on the fault-free run, got {:?}",
            run.detections
        );
    }

    #[test]
    fn seeded_straggler_fires_the_zscore_detector_on_the_right_worker() {
        let data = auc_datasets::criteo_like();
        let run = run_recovery(&data, None, &opts(0, "seed=21;slow@3:w1:p50")).expect("run");
        let hits: Vec<_> = run
            .detections
            .iter()
            .filter(|a| a.kind == AnomalyKind::Straggler)
            .collect();
        assert!(!hits.is_empty(), "slow@3 must trip the straggler detector");
        assert!(
            hits.iter().all(|a| a.worker == Some(1)),
            "every straggler detection must name worker 1: {hits:?}"
        );
        assert!(
            hits.iter().all(|a| (3..7).contains(&a.at_iter)),
            "detections must land inside the fault window: {hits:?}"
        );
        assert!(!run
            .detections
            .iter()
            .any(|a| a.kind != AnomalyKind::Straggler));
    }

    #[test]
    fn seeded_nic_degradation_fires_the_slope_detector() {
        let data = auc_datasets::criteo_like();
        let run = run_recovery(&data, None, &opts(0, "seed=22;nic@4:p25")).expect("run");
        let hits: Vec<_> = run
            .detections
            .iter()
            .filter(|a| a.kind == AnomalyKind::NicDegradation)
            .collect();
        assert!(!hits.is_empty(), "nic@4:p25 must trip the slope detector");
        assert!(
            hits.iter().all(|a| a.at_iter >= 4),
            "the slope can only trend up once the window opens: {hits:?}"
        );
        assert!(!run
            .detections
            .iter()
            .any(|a| a.kind == AnomalyKind::Straggler));
    }

    #[test]
    fn nic_outage_backoff_fires_the_queue_depth_detector() {
        let data = auc_datasets::criteo_like();
        // A two-iteration outage needs two exponential-backoff attempts
        // (0.05 s then 0.10 s) to clear, reaching the depth limit of 2.
        let run = run_recovery(&data, None, &opts(0, "seed=23;nic@5:p0:i2")).expect("run");
        assert!(
            run.detections
                .iter()
                .any(|a| a.kind == AnomalyKind::QueueRunaway),
            "a full outage's backoff queue must trip the depth detector: {:?}",
            run.detections
        );
    }

    #[test]
    fn crash_post_mortem_validates_and_ends_with_the_final_causal_task() {
        use picasso_obs::flight::{FlightCategory, FlightDump};
        let data = auc_datasets::criteo_like();
        let store = temp_store("postmortem");
        let run = run_recovery(&data, Some(&store), &opts(2, "seed=30;crash@7")).expect("run");

        assert_eq!(run.post_mortems.len(), 1, "one dump per detected crash");
        let dump = &run.post_mortems[0];
        // The artifact round-trips through serialization + checksum check.
        let text = dump.to_json().to_json();
        let back = FlightDump::from_text(&text).expect("post-mortem validates");
        assert_eq!(&back, dump);
        // Its last fault event is the crash itself...
        let fault = back.last_of(FlightCategory::Fault).expect("crash recorded");
        assert_eq!(fault.code, "crash");
        assert_eq!(fault.iter, 7);
        // ...preceded by the final causal task executed before the crash:
        // the collective that closed iteration 6.
        let task = back.last_of(FlightCategory::Task).expect("tasks recorded");
        assert_eq!(task.code, "collective");
        assert_eq!(task.iter, 6);

        // Deterministic: an identical run digests identically.
        let store2 = temp_store("postmortem2");
        let again = run_recovery(&data, Some(&store2), &opts(2, "seed=30;crash@7")).expect("run");
        assert_eq!(again.post_mortems[0].digest(), dump.digest());
        assert_eq!(again.flight_dump.digest(), run.flight_dump.digest());
        let _ = std::fs::remove_dir_all(store.dir());
        let _ = std::fs::remove_dir_all(store2.dir());
    }

    #[test]
    fn flight_recording_is_observation_only_and_overflow_lints() {
        let data = auc_datasets::criteo_like();
        let baseline = run_recovery(&data, None, &opts(0, "seed=31")).expect("baseline");
        assert!(lint_flight(&baseline.flight).is_empty(), "no overflow");

        // A two-event ring must overflow, fire the lint — and still leave
        // the training math bit-identical.
        let mut tiny = opts(0, "seed=31");
        tiny.flight = FlightConfig {
            capacity: 2,
            ..FlightConfig::default()
        };
        let cramped = run_recovery(&data, None, &tiny).expect("cramped");
        assert_eq!(cramped.final_digest, baseline.final_digest);
        assert_eq!(cramped.sim_time_s, baseline.sim_time_s);
        assert!(cramped.flight.overwritten > 0);
        let diags = lint_flight(&cramped.flight);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "run.flight-overflow");
        assert_eq!(diags[0].span, Span::Run("flight-recorder".into()));
    }

    #[test]
    fn flight_accounting_lands_in_report_and_metrics() {
        let data = auc_datasets::criteo_like();
        let store = temp_store("flightobs");
        let run = run_recovery(&data, Some(&store), &opts(2, "seed=32;crash@5")).expect("run");

        let doc = run.to_json();
        let flight = doc.get("flight").expect("flight section");
        assert!(flight.get("recorded").and_then(Json::as_u64).unwrap() > 0);
        assert!(
            flight.get("overhead_ns").is_none(),
            "volatile overhead stays out of the report"
        );
        let dumps = doc.get("post_mortems").and_then(Json::items).unwrap();
        assert_eq!(dumps.len(), 1);
        assert!(dumps[0].get("checksum").is_some());

        let m = MetricsRegistry::new();
        run.export_metrics(&m);
        assert_eq!(m.counter_value("flight_post_mortems_total", &[]), 1);
        assert!(m.gauge_value("flight_occupancy", &[]).unwrap() > 0.0);
        assert!(m.counter_value("flight_events_seen_total", &[("category", "task")]) > 0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn detection_is_observation_only_and_survives_crash_rewinds() {
        // Timing and model state must be bit-identical whether or not the
        // detectors fire, and a crash mid-window must not double-report
        // the replayed iterations.
        let data = auc_datasets::criteo_like();
        let plain = run_recovery(&data, None, &opts(0, "seed=24;slow@2:w0:p50")).expect("plain");
        let store = temp_store("detrewind");
        let crashed = run_recovery(
            &data,
            Some(&store),
            &opts(2, "seed=24;slow@2:w0:p50;crash@5"),
        )
        .expect("crashed");
        assert_eq!(plain.final_digest, crashed.final_digest);
        let mut keys: Vec<_> = crashed
            .detections
            .iter()
            .map(|a| (a.kind, a.worker, a.at_iter))
            .collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len(), "rewind must not duplicate detections");
        let json = crashed.to_json().to_json();
        assert!(json.contains("\"detections\""));
        assert!(json.contains("straggler"));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
