//! Warm-up measurement over real data.
//!
//! The paper's optimizations are parameterized by statistics collected
//! during warm-up iterations (§III-B, §III-D): ID frequencies drive the
//! Eq. 1 pack sharding, deduplication rates size the Unique outputs, and
//! HybridHash hit ratios split Gather traffic between Hot- and
//! Cold-storage. This module runs actual batches through the real embedding
//! substrate and reports those statistics.

use picasso_data::{BatchGenerator, DatasetSpec, FrequencyStats};
use picasso_embedding::{CacheMetrics, EmbeddingTable, HybridHash, HybridHashConfig, TableLoad};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Warm-up configuration.
#[derive(Debug, Clone)]
pub struct WarmupConfig {
    /// Batches to run (first half trains the frequency counters, second
    /// half measures hit ratios).
    pub batches: usize,
    /// Instances per warm-up batch.
    pub batch_size: usize,
    /// Working-vocabulary clamp for materialized IDs.
    pub max_vocab: u64,
    /// Total Hot-storage budget in bytes (split across tables by observed
    /// ID mass); `0` disables the cache measurement.
    pub hot_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            batches: 8,
            batch_size: 1024,
            max_vocab: 20_000,
            hot_bytes: 1 << 30,
            seed: 0xC0FFEE,
        }
    }
}

/// Measured statistics of one embedding table.
#[derive(Debug, Clone, Copy)]
pub struct TableStats {
    /// Fraction of a batch's IDs remaining after `Unique`.
    pub unique_ratio: f64,
    /// HybridHash hit ratio after warm-up (0.0 when caching disabled).
    pub hit_ratio: f64,
    /// Share of all observed categorical IDs hitting this table.
    pub id_mass: f64,
    /// Embedding dimension.
    pub dim: usize,
}

/// The warm-up report.
#[derive(Debug, Clone)]
pub struct WarmupReport {
    /// Per-table measurements.
    pub tables: BTreeMap<usize, TableStats>,
    /// Total categorical IDs observed (Eq. 1's `N`).
    pub total_ids: u64,
    /// Empirical coverage of the top 20% of distinct IDs (Fig. 3's
    /// headline statistic), ID-mass-weighted across tables.
    pub coverage_top20: f64,
    /// Aggregate hit ratio across tables, ID-mass-weighted.
    pub overall_hit_ratio: f64,
    /// Per-table snapshots of the measurement caches (counters, occupancy),
    /// kept for the run-level metrics exporters. Empty when caching is
    /// disabled.
    pub caches: BTreeMap<usize, CacheMetrics>,
}

impl WarmupReport {
    /// Per-table Eq. 1 loads for the D-packing planner.
    pub fn table_loads(&self) -> BTreeMap<usize, TableLoad> {
        self.tables
            .iter()
            .map(|(&t, s)| {
                (
                    t,
                    TableLoad {
                        dim: s.dim,
                        freq_mass: s.id_mass,
                    },
                )
            })
            .collect()
    }
}

/// Measurement dimension used for cache simulation: hit ratios depend on
/// *row* capacity, so tables are measured at a small dimension with the
/// byte budget rescaled to preserve row counts.
const MEASURE_DIM: usize = 8;

/// Runs the warm-up over `data`.
pub fn run_warmup(data: &Arc<DatasetSpec>, cfg: &WarmupConfig) -> WarmupReport {
    assert!(cfg.batches >= 2, "need at least two warm-up batches");
    let mut gen = BatchGenerator::with_max_vocab(Arc::clone(data), cfg.seed, cfg.max_vocab);

    // Table -> (dim, per-batch id streams).
    let mut table_dim: BTreeMap<usize, usize> = BTreeMap::new();
    for f in &data.fields {
        table_dim.insert(f.table_group, f.dim);
    }
    let mut freq: BTreeMap<usize, FrequencyStats> = BTreeMap::new();
    let mut unique_accum: BTreeMap<usize, (u64, u64)> = BTreeMap::new(); // (unique, total)
    let mut batches_ids: Vec<BTreeMap<usize, Vec<u64>>> = Vec::with_capacity(cfg.batches);

    for _ in 0..cfg.batches {
        let batch = gen.next_batch(cfg.batch_size);
        let mut per_table: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for fb in &batch.fields {
            let table = data.fields[fb.field].table_group;
            per_table
                .entry(table)
                .or_default()
                .extend_from_slice(&fb.ids);
        }
        for (&table, ids) in &per_table {
            freq.entry(table).or_default().record_all(ids);
            let (u, _) = picasso_embedding::unique(ids);
            let e = unique_accum.entry(table).or_insert((0, 0));
            e.0 += u.unique_ids.len() as u64;
            e.1 += ids.len() as u64;
        }
        batches_ids.push(per_table);
    }

    let total_ids: u64 = freq.values().map(|f| f.total()).sum();

    // Cache measurement: per-table HybridHash with budget split by mass,
    // warm on the first half of the batches, measured on the second half.
    let mut hit: BTreeMap<usize, f64> = BTreeMap::new();
    let mut caches: BTreeMap<usize, CacheMetrics> = BTreeMap::new();
    if cfg.hot_bytes > 0 {
        let warm = cfg.batches / 2;
        for (&table, stats) in &freq {
            let mass = stats.total() as f64 / total_ids as f64;
            let dim = table_dim[&table];
            let budget = cfg.hot_bytes as f64 * mass;
            let rows = budget / (dim as f64 * 4.0);
            let measure_bytes = (rows * (MEASURE_DIM * 4) as f64) as u64;
            let mut cache = HybridHash::new(
                EmbeddingTable::new(MEASURE_DIM, table as u64),
                HybridHashConfig {
                    warmup_iters: warm as u64,
                    flush_iters: cfg.batches as u64,
                    hot_bytes: measure_bytes,
                },
            );
            let mut out = Vec::new();
            for b in &batches_ids {
                if let Some(ids) = b.get(&table) {
                    out.clear();
                    cache.lookup_batch(ids, &mut out);
                }
            }
            hit.insert(table, cache.stats().hit_ratio());
            caches.insert(table, cache.metrics());
        }
    }

    let mut tables = BTreeMap::new();
    let mut coverage = 0.0;
    let mut overall_hit = 0.0;
    for (&table, stats) in &freq {
        let mass = stats.total() as f64 / total_ids as f64;
        let (u, t) = unique_accum[&table];
        let table_stats = TableStats {
            unique_ratio: if t == 0 { 1.0 } else { u as f64 / t as f64 },
            hit_ratio: hit.get(&table).copied().unwrap_or(0.0),
            id_mass: mass,
            dim: table_dim[&table],
        };
        coverage += stats.coverage_of_top(0.2) * mass;
        overall_hit += table_stats.hit_ratio * mass;
        tables.insert(table, table_stats);
    }

    WarmupReport {
        tables,
        total_ids,
        coverage_top20: coverage,
        overall_hit_ratio: overall_hit,
        caches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WarmupConfig {
        WarmupConfig {
            batches: 6,
            batch_size: 256,
            max_vocab: 2000,
            hot_bytes: 1 << 22,
            seed: 7,
        }
    }

    #[test]
    fn warmup_measures_every_table() {
        let data = DatasetSpec::criteo().shared();
        let r = run_warmup(&data, &small_cfg());
        assert_eq!(r.tables.len(), 26);
        assert!(r.total_ids > 0);
        let mass: f64 = r.tables.values().map(|t| t.id_mass).sum();
        assert!((mass - 1.0).abs() < 1e-9, "masses sum to 1, got {mass}");
    }

    #[test]
    fn unique_ratio_is_a_ratio() {
        let data = DatasetSpec::criteo().shared();
        let r = run_warmup(&data, &small_cfg());
        for (t, s) in &r.tables {
            assert!(
                s.unique_ratio > 0.0 && s.unique_ratio <= 1.0,
                "table {t}: {}",
                s.unique_ratio
            );
        }
        // Zipf-skewed batches of 256 from a 2000-vocab must deduplicate some.
        let avg: f64 =
            r.tables.values().map(|s| s.unique_ratio).sum::<f64>() / r.tables.len() as f64;
        assert!(avg < 0.999, "expected some dedup, got {avg}");
    }

    #[test]
    fn skewed_data_hits_cache() {
        let data = DatasetSpec::alibaba().shared();
        let mut cfg = small_cfg();
        cfg.hot_bytes = 64 << 20;
        let r = run_warmup(&data, &cfg);
        assert!(
            r.overall_hit_ratio > 0.2,
            "zipf(1.2) should exceed the paper's 20% target, got {}",
            r.overall_hit_ratio
        );
        assert!(
            r.coverage_top20 > 0.5,
            "Fig. 3 skew, got {}",
            r.coverage_top20
        );
    }

    #[test]
    fn disabling_cache_zeroes_hit_ratios() {
        let data = DatasetSpec::criteo().shared();
        let mut cfg = small_cfg();
        cfg.hot_bytes = 0;
        let r = run_warmup(&data, &cfg);
        assert!(r.tables.values().all(|t| t.hit_ratio == 0.0));
        assert_eq!(r.overall_hit_ratio, 0.0);
    }

    #[test]
    fn bigger_cache_hits_more() {
        let data = DatasetSpec::criteo().shared();
        let mut small = small_cfg();
        small.hot_bytes = 1 << 20;
        let mut large = small_cfg();
        large.hot_bytes = 256 << 20;
        let rs = run_warmup(&data, &small);
        let rl = run_warmup(&data, &large);
        assert!(rl.overall_hit_ratio >= rs.overall_hit_ratio);
    }

    #[test]
    fn table_loads_feed_the_planner() {
        let data = DatasetSpec::criteo().shared();
        let r = run_warmup(&data, &small_cfg());
        let loads = r.table_loads();
        assert_eq!(loads.len(), 26);
        assert!(loads.values().all(|l| l.dim == 128));
    }
}
