//! The end-to-end training pipeline: warm-up on real data, optimization
//! passes, batch sizing, simulation, and reporting.

use crate::framework::{Framework, Optimizations};
use crate::scheduler::{simulate, SimConfig, SimulationOutput};
use crate::strategy::Strategy;
use crate::telemetry::TrainingReport;
use crate::warmup::{run_warmup, WarmupConfig, WarmupReport};
use picasso_data::DatasetSpec;
use picasso_embedding::{PackPlan, PlannerConfig};
use picasso_graph::{
    graph_stats, lint_spec, Diagnostic, PassId, PassReport, Pipeline, PipelineError, PlanContext,
    Severity, WdlSpec,
};
use picasso_models::ModelKind;
use picasso_obs::{Tracer, WallClock};
use picasso_sim::{EngineError, MachineSpec};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use picasso_graph::MEMORY_AMPLIFICATION;

/// Why a training run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The optimization pipeline failed validation (bad ordering,
    /// duplicate or unknown passes).
    Pipeline(PipelineError),
    /// Lowering produced an invalid task graph (a dependency cycle or a
    /// dangling reference the engine rejected).
    Lowering(EngineError),
    /// Static analysis found error-severity diagnostics; the run was
    /// aborted before scheduling. The payload holds only the errors —
    /// call [`lint`] for the full report including warnings.
    Lint(Vec<Diagnostic>),
    /// Fault recovery was exhausted: every retry failed, the checkpoint
    /// store is unusable, or the fault plan outlasts the retry budget.
    /// The message names the failing component.
    Unrecoverable(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Pipeline(e) => write!(f, "invalid optimization pipeline: {e}"),
            TrainError::Lowering(e) => write!(f, "lowering produced an invalid task graph: {e}"),
            TrainError::Lint(diags) => {
                write!(
                    f,
                    "static analysis rejected the run: {} error(s)",
                    diags.len()
                )?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            TrainError::Unrecoverable(msg) => {
                write!(f, "training could not recover: {msg}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Pipeline(e) => Some(e),
            TrainError::Lowering(e) => Some(e),
            TrainError::Lint(_) => None,
            TrainError::Unrecoverable(_) => None,
        }
    }
}

impl From<PipelineError> for TrainError {
    fn from(e: PipelineError) -> TrainError {
        TrainError::Pipeline(e)
    }
}

impl From<EngineError> for TrainError {
    fn from(e: EngineError) -> TrainError {
        TrainError::Lowering(e)
    }
}

/// Options for one training run.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// Worker machines.
    pub machines: usize,
    /// Machine preset.
    pub machine: MachineSpec,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Fixed per-executor batch; `None` derives it from GPU memory.
    pub batch_per_executor: Option<usize>,
    /// Fixed micro-batch count; `None` uses the compute-intensity heuristic.
    pub micro_batches: Option<usize>,
    /// Fixed K-interleaving group count; `None` derives it from Eq. 3.
    pub groups: Option<usize>,
    /// HybridHash Hot-storage budget in bytes.
    pub hot_bytes: u64,
    /// Warm-up measurement configuration.
    pub warmup: WarmupConfig,
    /// Upper bound on the derived batch size.
    pub max_batch: usize,
    /// Embedding tables excluded from K-interleaving control dependencies
    /// (the paper's *preset excluded embedding*: outputs that feed no
    /// concatenation can advance their downstream freely, §III-C).
    pub excluded_tables: Vec<usize>,
    /// Quantize collective communication to half precision (§V's
    /// "quantitative communication" extension; orthogonal to the PICASSO
    /// optimizations and off by default because it is precision-lossy).
    pub quantized_comm: bool,
    /// Extra control-dependency edges `(from, to)` between K-interleaving
    /// groups, layered over the implicit Fig. 8c stagger. Overrides the
    /// spec's own `group_deps` when nonempty. Self/backward edges are
    /// rejected by static analysis before the scheduler runs.
    pub group_deps: Vec<(u32, u32)>,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            machines: 1,
            machine: MachineSpec::eflops(),
            iterations: 6,
            batch_per_executor: None,
            micro_batches: None,
            groups: None,
            hot_bytes: 1 << 30,
            warmup: WarmupConfig::default(),
            max_batch: 65_536,
            excluded_tables: Vec::new(),
            quantized_comm: false,
            group_deps: Vec::new(),
        }
    }
}

/// Everything a run produced: the report plus the optimized spec and
/// warm-up measurements (for experiments that inspect them).
#[derive(Debug)]
pub struct RunArtifacts {
    /// The telemetry report.
    pub report: TrainingReport,
    /// The spec after all passes.
    pub spec: WdlSpec,
    /// Warm-up measurements.
    pub warmup: WarmupReport,
    /// The raw simulation (task records and schedule scopes) the report was
    /// derived from, for trace/metrics export (see [`crate::observe`]).
    pub output: SimulationOutput,
    /// What each applied optimization pass did to the graph, in order.
    pub pass_reports: Vec<PassReport>,
    /// Every static-analysis finding (all of warning severity or below —
    /// errors abort the run with [`TrainError::Lint`] instead).
    pub lint: Vec<Diagnostic>,
}

/// Runs `model` on `data` under a named framework preset.
pub fn train(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    framework: Framework,
    opts: &TrainerOptions,
) -> Result<RunArtifacts, TrainError> {
    let strategy = framework.strategy(opts.machines);
    run(
        model,
        data,
        strategy,
        framework.optimizations(),
        framework.name(),
        opts,
    )
}

/// Runs the full static analyzer over the planned run without simulating:
/// spec rules (with the dataset's per-table dims as the Eq. 1 oracle),
/// plan rules on the pass pipeline, and stage rules on the lowered graph.
/// Returns *all* diagnostics, errors included.
pub fn lint(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    strategy: Strategy,
    optimizations: Optimizations,
    opts: &TrainerOptions,
) -> Result<Vec<Diagnostic>, TrainError> {
    Ok(prepare(model, data, strategy, optimizations, opts)?.diagnostics)
}

/// Runs `model` with an explicit strategy and optimization pipeline (used
/// by the Table IV ablation and the Fig. 14 sweeps).
pub fn run(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    strategy: Strategy,
    optimizations: Optimizations,
    label: &str,
    opts: &TrainerOptions,
) -> Result<RunArtifacts, TrainError> {
    let p = prepare(model, data, strategy, optimizations, opts)?;
    let errors: Vec<Diagnostic> = p
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .cloned()
        .collect();
    if !errors.is_empty() {
        return Err(TrainError::Lint(errors));
    }
    let out = simulate(&p.spec, strategy, &p.cfg)?;
    let report = TrainingReport::from_simulation(
        label,
        p.spec.name.clone(),
        &out,
        graph_stats(&p.spec),
        p.micro,
        p.groups,
        p.hit,
    );
    Ok(RunArtifacts {
        report,
        spec: p.spec,
        warmup: p.warmup,
        output: out,
        pass_reports: p.pass_reports,
        lint: p.diagnostics,
    })
}

/// Everything [`prepare`] derives before the simulation gate: the planned
/// spec, measurement context, simulation shape, and every static-analysis
/// finding over all three surfaces.
pub(crate) struct Prepared {
    pub(crate) spec: WdlSpec,
    pub(crate) warmup: WarmupReport,
    pub(crate) pass_reports: Vec<PassReport>,
    pub(crate) diagnostics: Vec<Diagnostic>,
    pub(crate) cfg: SimConfig,
    pub(crate) micro: usize,
    pub(crate) groups: usize,
    pub(crate) hit: f64,
}

/// Warm-up, pass pipeline, batch sizing, analytic ratios, and the full
/// static analysis — everything up to (but excluding) the simulation.
pub(crate) fn prepare(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    strategy: Strategy,
    optimizations: Optimizations,
    opts: &TrainerOptions,
) -> Result<Prepared, TrainError> {
    let pipeline = Pipeline::from_config(&optimizations)?;
    let spec = model.build(data);
    let caching = optimizations.enables(PassId::Caching);

    // Warm-up on real batches: per-table ID masses for the packing planner
    // and coverage verification. (Dedup and hit ratios at the *training*
    // batch size are set analytically below, because working-vocabulary
    // clamping would distort them at production vocabulary scales — see
    // DESIGN.md.)
    let mut wcfg = opts.warmup.clone();
    wcfg.hot_bytes = if caching { opts.hot_bytes } else { 0 };
    let warmup = run_warmup(data, &wcfg);

    // The plan context carries everything the pass planners consume:
    // machine preset, memory budgets, knob overrides, and the Eq. 1
    // table-to-pack mapping from the planner over the warm-up ID masses.
    let mut ctx = PlanContext::new(opts.machine.clone());
    ctx.hot_bytes = if caching { opts.hot_bytes } else { 0 };
    ctx.max_batch = opts.max_batch;
    ctx.micro_batches = opts.micro_batches;
    ctx.groups = opts.groups;
    ctx.excluded_tables = opts.excluded_tables.clone();
    if optimizations.enables(PassId::DPacking) {
        let plan = PackPlan::with_loads(
            data,
            &PlannerConfig::default(),
            &warmup.table_loads(),
            warmup.total_ids,
        );
        ctx.table_to_pack = plan.table_to_pack();
    }

    // The pipeline runs instrumented: wall-clock spans on the `passes`
    // track plus before/after op accounting (Table V). Every configured
    // pass reports, including ones whose planner derived a no-op.
    let pass_tracer = Tracer::new(WallClock::new());
    let (mut spec, pass_reports, mut diagnostics) = pipeline.run(&spec, &mut ctx, &pass_tracer);
    if !opts.group_deps.is_empty() {
        spec.group_deps = opts.group_deps.clone();
    }

    let micro = ctx.derived.micro_batches;
    let groups = ctx.derived.groups;
    let batch = match opts.batch_per_executor {
        Some(b) => b,
        None => {
            let base = ctx.plan_base_batch(&spec);
            if micro > 1 {
                ((base as f64 * micro as f64 * 0.9) as usize).min(opts.max_batch)
            } else {
                base
            }
        }
    };

    // Analytic dedup and cache-hit ratios at the actual lookup granularity
    // (one micro-batch) over the *real* vocabulary sizes and skews.
    let hit = apply_analytic_ratios(
        &mut spec,
        data,
        batch.div_ceil(micro),
        ctx.hot_bytes as f64,
        &warmup,
    );

    let cfg = SimConfig {
        batch_per_executor: batch,
        iterations: opts.iterations,
        machines: opts.machines,
        machine: opts.machine.clone(),
        quantized_comm: opts.quantized_comm,
    };

    // Static analysis over the remaining two surfaces (the plan surface
    // was linted inside `pipeline.run`): spec rules against the dataset's
    // per-table dims (the Eq. 1 homogeneity oracle), then stage rules on
    // the lowered execution graph.
    let table_dims: BTreeMap<usize, usize> =
        data.fields.iter().map(|f| (f.table_group, f.dim)).collect();
    let mut spec_diags = lint_spec(&spec, Some(&table_dims));
    spec_diags.append(&mut diagnostics);
    let mut diagnostics = spec_diags;
    diagnostics.extend(crate::lint::stage_lints(&spec, strategy, &cfg));

    Ok(Prepared {
        spec,
        warmup,
        pass_reports,
        diagnostics,
        cfg,
        micro,
        groups,
        hit,
    })
}

/// Sets every chain's `unique_ratio` and `cache_hit_ratio` from the
/// analytic Zipf models at the real vocabulary scale, and returns the
/// ID-mass-weighted overall hit ratio.
///
/// - Dedup: `expected_unique_ratio(vocab, s, ids per lookup)` where a lookup
///   covers one micro-batch of one table.
/// - Cache: HybridHash converges to holding the top-k rows, so the hit
///   ratio is the analytic frequency mass of the `k` rows the table's share
///   of Hot-storage can hold (the per-table share follows the warm-up ID
///   masses, mirroring how the planner splits the budget).
fn apply_analytic_ratios(
    spec: &mut WdlSpec,
    data: &DatasetSpec,
    micro_batch: usize,
    hot_bytes: f64,
    warmup: &WarmupReport,
) -> f64 {
    use picasso_data::distribution::{coverage_top_k, expected_unique_ratio};
    // Per-table aggregates from the dataset.
    let mut table_vocab: BTreeMap<usize, u64> = BTreeMap::new();
    let mut table_skew: BTreeMap<usize, f64> = BTreeMap::new();
    let mut table_ids: BTreeMap<usize, f64> = BTreeMap::new();
    let mut table_dim: BTreeMap<usize, usize> = BTreeMap::new();
    for f in &data.fields {
        table_vocab.insert(f.table_group, f.vocab);
        table_skew.insert(f.table_group, f.dist.exponent());
        table_dim.insert(f.table_group, f.dim);
        *table_ids.entry(f.table_group).or_insert(0.0) += f.avg_ids;
    }
    let mut overall_hit = 0.0;
    for chain in &mut spec.chains {
        let mut unique = 0.0;
        let mut hit = 0.0;
        let mut weight = 0.0;
        for &t in &chain.tables {
            let ids = table_ids[&t] * micro_batch as f64;
            let vocab = table_vocab[&t];
            let s = table_skew[&t];
            let u = expected_unique_ratio(vocab, s, ids);
            let mass = warmup.tables.get(&t).map(|ts| ts.id_mass).unwrap_or(0.0);
            let h = if hot_bytes > 0.0 {
                let rows = hot_bytes * mass / (table_dim[&t] as f64 * 4.0);
                coverage_top_k(vocab, s, rows)
            } else {
                0.0
            };
            unique += u * ids;
            hit += h * ids;
            weight += ids;
            overall_hit += h * mass;
        }
        if weight > 0.0 {
            chain.unique_ratio = unique / weight;
            chain.cache_hit_ratio = hit / weight;
        }
    }
    overall_hit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> TrainerOptions {
        TrainerOptions {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 2000,
                hot_bytes: 1 << 26,
                seed: 3,
            },
            max_batch: 8192,
            ..TrainerOptions::default()
        }
    }

    #[test]
    fn picasso_beats_every_baseline_on_dlrm() {
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        let picasso = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap();
        for baseline in [Framework::TfPs, Framework::Horovod, Framework::PyTorch] {
            let b = train(ModelKind::Dlrm, &data, baseline, &opts).unwrap();
            assert!(
                picasso.report.ips_per_node > b.report.ips_per_node,
                "PICASSO {} <= {} {}",
                picasso.report.ips_per_node,
                baseline.name(),
                b.report.ips_per_node
            );
        }
    }

    #[test]
    fn packing_reduces_chain_count() {
        let data = DatasetSpec::product1().shared();
        let opts = quick_opts();
        let full = train(ModelKind::WideDeep, &data, Framework::Picasso, &opts).unwrap();
        let base = train(ModelKind::WideDeep, &data, Framework::PicassoBase, &opts).unwrap();
        assert!(full.spec.chains.len() < base.spec.chains.len() / 3);
        assert!(
            full.report.op_stats.total_ops < base.report.op_stats.total_ops / 2,
            "packed {} vs baseline {}",
            full.report.op_stats.total_ops,
            base.report.op_stats.total_ops
        );
    }

    #[test]
    fn ablation_every_optimization_contributes() {
        let data = DatasetSpec::product1().shared();
        let opts = quick_opts();
        let full = run(
            ModelKind::WideDeep,
            &data,
            Strategy::Hybrid,
            Optimizations::all(),
            "full",
            &opts,
        )
        .unwrap();
        for (label, o) in [
            ("w/o packing", Optimizations::without_packing()),
            ("w/o interleaving", Optimizations::without_interleaving()),
            ("w/o caching", Optimizations::without_caching()),
        ] {
            let r = run(
                ModelKind::WideDeep,
                &data,
                Strategy::Hybrid,
                o,
                label,
                &opts,
            )
            .unwrap();
            assert!(
                r.report.ips_per_node <= full.report.ips_per_node * 1.03,
                "{label}: {} > full {}",
                r.report.ips_per_node,
                full.report.ips_per_node
            );
        }
    }

    #[test]
    fn caching_improves_cache_hit_and_batch_accounting() {
        let data = DatasetSpec::alibaba().shared();
        let opts = quick_opts();
        let with = train(ModelKind::Din, &data, Framework::Picasso, &opts).unwrap();
        assert!(with.report.cache_hit_ratio > 0.0);
        let without = run(
            ModelKind::Din,
            &data,
            Strategy::Hybrid,
            Optimizations::without_caching(),
            "w/o caching",
            &opts,
        )
        .unwrap();
        assert_eq!(without.report.cache_hit_ratio, 0.0);
    }

    #[test]
    fn explicit_knobs_are_respected() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.batch_per_executor = Some(1000);
        opts.micro_batches = Some(5);
        opts.groups = Some(3);
        let r = train(ModelKind::DeepFm, &data, Framework::Picasso, &opts).unwrap();
        assert_eq!(r.report.batch_per_executor, 1000);
        assert_eq!(r.report.micro_batches, 5);
        assert_eq!(r.report.groups, 3);
        assert_eq!(r.spec.micro_batches, 5);
    }

    #[test]
    fn every_configured_pass_reports_even_when_noop() {
        // Force both interleaving planners into a no-op (1 group, 1
        // micro-batch): the passes must still land in pass_reports so
        // ablation tables and metrics lanes stay complete.
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.micro_batches = Some(1);
        opts.groups = Some(1);
        let r = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap();
        let names: Vec<&str> = r.pass_reports.iter().map(|p| p.pass.as_str()).collect();
        assert_eq!(
            names,
            [
                "d_packing",
                "k_packing",
                "k_interleaving",
                "d_interleaving",
                "caching"
            ]
        );
        let noop = |name: &str| {
            let p = r.pass_reports.iter().find(|p| p.pass == name).unwrap();
            assert_eq!(p.ops_before, p.ops_after, "{name} should be a no-op");
        };
        noop("k_interleaving");
        noop("d_interleaving");
        assert_eq!(r.report.micro_batches, 1);
        assert_eq!(r.report.groups, 1);
    }

    #[test]
    fn cyclic_group_deps_are_rejected_before_scheduling() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.groups = Some(3);
        // Group 1 already waits on group 0 through the implicit stagger;
        // declaring 1 -> 0 closes a control-dependency cycle.
        opts.group_deps = vec![(1, 0)];
        let err = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap_err();
        match &err {
            TrainError::Lint(diags) => {
                assert!(
                    diags.iter().any(|d| d.rule == "stage.dependency-cycle"),
                    "{diags:?}"
                );
                assert!(diags.iter().all(|d| d.severity == Severity::Error));
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        assert!(err.to_string().contains("static analysis rejected the run"));
    }

    #[test]
    fn forward_group_deps_schedule_and_lint_clean() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.groups = Some(3);
        opts.group_deps = vec![(0, 2)];
        let r = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap();
        assert!(r.report.ips_per_node > 0.0);
        assert!(r.lint.iter().all(|d| d.severity < Severity::Error));
    }

    #[test]
    fn healthy_runs_carry_no_lint_errors() {
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        for framework in [Framework::Picasso, Framework::TfPs, Framework::Horovod] {
            let r = train(ModelKind::Dlrm, &data, framework, &opts).unwrap();
            assert!(
                r.lint.iter().all(|d| d.severity < Severity::Error),
                "{framework:?}: {:?}",
                r.lint
            );
        }
    }

    #[test]
    fn lint_returns_all_diagnostics_without_simulating() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.groups = Some(2);
        opts.group_deps = vec![(1, 1)];
        // Unlike `run`, `lint` reports the errors instead of failing.
        let diags = lint(
            ModelKind::Dlrm,
            &data,
            Strategy::Hybrid,
            Optimizations::all(),
            &opts,
        )
        .unwrap();
        assert!(diags.iter().any(|d| d.rule == "stage.dependency-cycle"));
    }

    #[test]
    fn invalid_pipelines_surface_as_train_errors() {
        use picasso_graph::{PassId, PipelineError};
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        let bad = Optimizations::new(vec![PassId::KInterleaving, PassId::DPacking]);
        let err = run(ModelKind::Dlrm, &data, Strategy::Hybrid, bad, "bad", &opts).unwrap_err();
        assert!(matches!(
            err,
            TrainError::Pipeline(PipelineError::OrderingViolation { .. })
        ));
        assert!(err.to_string().contains("invalid optimization pipeline"));
    }

    #[test]
    fn exclusion_rides_the_k_interleaving_pass() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.excluded_tables = vec![0];
        let with = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap();
        assert!(with.spec.chains.iter().any(|c| c.interleave_excluded));
        // Without the K-Interleaving pass, exclusion has nothing to ride.
        let without = run(
            ModelKind::Dlrm,
            &data,
            Strategy::Hybrid,
            Optimizations::none(),
            "base",
            &opts,
        )
        .unwrap();
        assert!(without.spec.chains.iter().all(|c| !c.interleave_excluded));
    }

    #[test]
    fn picasso_batch_exceeds_baseline_batch() {
        // The Table VII pattern: micro-batching lets PICASSO run larger
        // effective batches within the same device memory.
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        let p = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts).unwrap();
        let b = train(ModelKind::Dlrm, &data, Framework::PicassoBase, &opts).unwrap();
        assert!(p.report.batch_per_executor >= b.report.batch_per_executor);
    }
}
