//! The end-to-end training pipeline: warm-up on real data, optimization
//! passes, batch sizing, simulation, and reporting.

use crate::framework::{Framework, Optimizations};
use crate::scheduler::{simulate, SimConfig, SimulationOutput};
use crate::strategy::Strategy;
use crate::telemetry::TrainingReport;
use crate::warmup::{run_warmup, WarmupConfig, WarmupReport};
use picasso_data::DatasetSpec;
use picasso_embedding::{PackPlan, PlannerConfig};
use picasso_graph::{
    d_interleaving, d_packing, graph_stats, k_interleaving, k_packing, run_pass, Layer, PassReport,
    WdlSpec,
};
use picasso_models::ModelKind;
use picasso_obs::{Tracer, WallClock};
use picasso_sim::MachineSpec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Memory amplification of framework execution over the analytic
/// feature-map volume: retained per-op activations, gradient buffers,
/// allocator fragmentation and workspace. Applied when deriving the largest
/// feasible batch from GPU memory (Eq. 2's device-memory case).
pub const MEMORY_AMPLIFICATION: f64 = 16.0;

/// Pipeline-depth window used to derive the Eq. 3 group capacity: a group
/// should occupy its tightest resource for at most this long.
const GROUP_WINDOW_SECS: f64 = 0.002;

/// Options for one training run.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// Worker machines.
    pub machines: usize,
    /// Machine preset.
    pub machine: MachineSpec,
    /// Iterations to simulate.
    pub iterations: usize,
    /// Fixed per-executor batch; `None` derives it from GPU memory.
    pub batch_per_executor: Option<usize>,
    /// Fixed micro-batch count; `None` uses the compute-intensity heuristic.
    pub micro_batches: Option<usize>,
    /// Fixed K-interleaving group count; `None` derives it from Eq. 3.
    pub groups: Option<usize>,
    /// HybridHash Hot-storage budget in bytes.
    pub hot_bytes: u64,
    /// Warm-up measurement configuration.
    pub warmup: WarmupConfig,
    /// Upper bound on the derived batch size.
    pub max_batch: usize,
    /// Embedding tables excluded from K-interleaving control dependencies
    /// (the paper's *preset excluded embedding*: outputs that feed no
    /// concatenation can advance their downstream freely, §III-C).
    pub excluded_tables: Vec<usize>,
    /// Quantize collective communication to half precision (§V's
    /// "quantitative communication" extension; orthogonal to the PICASSO
    /// optimizations and off by default because it is precision-lossy).
    pub quantized_comm: bool,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            machines: 1,
            machine: MachineSpec::eflops(),
            iterations: 6,
            batch_per_executor: None,
            micro_batches: None,
            groups: None,
            hot_bytes: 1 << 30,
            warmup: WarmupConfig::default(),
            max_batch: 65_536,
            excluded_tables: Vec::new(),
            quantized_comm: false,
        }
    }
}

/// Everything a run produced: the report plus the optimized spec and
/// warm-up measurements (for experiments that inspect them).
#[derive(Debug)]
pub struct RunArtifacts {
    /// The telemetry report.
    pub report: TrainingReport,
    /// The spec after all passes.
    pub spec: WdlSpec,
    /// Warm-up measurements.
    pub warmup: WarmupReport,
    /// The raw simulation (task records and schedule scopes) the report was
    /// derived from, for trace/metrics export (see [`crate::observe`]).
    pub output: SimulationOutput,
    /// What each applied optimization pass did to the graph, in order.
    pub pass_reports: Vec<PassReport>,
}

/// Runs `model` on `data` under a named framework preset.
pub fn train(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    framework: Framework,
    opts: &TrainerOptions,
) -> RunArtifacts {
    let strategy = framework.strategy(opts.machines);
    run(
        model,
        data,
        strategy,
        framework.optimizations(),
        framework.name(),
        opts,
    )
}

/// Runs `model` with an explicit strategy and optimization set (used by the
/// Table IV ablation and the Fig. 14 sweeps).
pub fn run(
    model: ModelKind,
    data: &Arc<DatasetSpec>,
    strategy: Strategy,
    optimizations: Optimizations,
    label: &str,
    opts: &TrainerOptions,
) -> RunArtifacts {
    let mut spec = model.build(data);

    // Warm-up on real batches: per-table ID masses for the packing planner
    // and coverage verification. (Dedup and hit ratios at the *training*
    // batch size are set analytically below, because working-vocabulary
    // clamping would distort them at production vocabulary scales — see
    // DESIGN.md.)
    let mut wcfg = opts.warmup.clone();
    wcfg.hot_bytes = if optimizations.caching {
        opts.hot_bytes
    } else {
        0
    };
    let warmup = run_warmup(data, &wcfg);

    // Optimization passes run instrumented: wall-clock spans on the
    // `passes` track plus before/after op accounting (Table V).
    let pass_tracer = Tracer::new(WallClock::new());
    let mut pass_reports: Vec<PassReport> = Vec::new();

    // D-Packing / K-Packing.
    if optimizations.packing {
        let plan = PackPlan::with_loads(
            data,
            &PlannerConfig::default(),
            &warmup.table_loads(),
            warmup.total_ids,
        );
        let mut table_to_pack: BTreeMap<usize, usize> = BTreeMap::new();
        for (p, pack) in plan.packs.iter().enumerate() {
            for &t in &pack.tables {
                table_to_pack.insert(t, p);
            }
        }
        let (packed, report) = run_pass("d_packing", &spec, &pass_tracer, |s| {
            d_packing::apply(s, &table_to_pack)
        });
        spec = packed;
        pass_reports.push(report);
    }
    if optimizations.kernel_packing {
        let (packed, report) = run_pass("k_packing", &spec, &pass_tracer, k_packing::apply);
        spec = packed;
        pass_reports.push(report);
    }

    // Batch sizing (Eq. 2's device-memory case).
    let resident = spec.dense_params() * 4.0 * 3.0; // params + grads + slots
    let hot = if optimizations.caching {
        opts.hot_bytes as f64
    } else {
        0.0
    };
    let base_batch = d_interleaving::memory_bound_batch(
        opts.machine.gpu.mem_capacity as f64,
        hot,
        resident,
        spec.feature_map_bytes_per_instance() * MEMORY_AMPLIFICATION,
    )
    .clamp(256, opts.max_batch);

    // Interleaving.
    let micro = if optimizations.d_interleaving {
        opts.micro_batches
            .unwrap_or_else(|| default_micro_batches(&spec))
    } else {
        1
    };
    let groups = if optimizations.k_interleaving {
        opts.groups
            .unwrap_or_else(|| auto_groups(&spec, &opts.machine, base_batch))
    } else {
        1
    };
    if groups > 1 {
        let (grouped, report) = run_pass("k_interleaving", &spec, &pass_tracer, |s| {
            let mut s = s.clone();
            k_interleaving::apply(&mut s, groups);
            s
        });
        spec = grouped;
        pass_reports.push(report);
    }
    if micro > 1 {
        let (pipelined, report) = run_pass("d_interleaving", &spec, &pass_tracer, |s| {
            let mut s = s.clone();
            d_interleaving::apply(&mut s, micro, Layer::Embedding);
            s
        });
        spec = pipelined;
        pass_reports.push(report);
    }
    if !opts.excluded_tables.is_empty() {
        for chain in &mut spec.chains {
            if chain
                .tables
                .iter()
                .any(|t| opts.excluded_tables.contains(t))
            {
                chain.interleave_excluded = true;
            }
        }
    }

    let batch = opts.batch_per_executor.unwrap_or_else(|| {
        if micro > 1 {
            ((base_batch as f64 * micro as f64 * 0.9) as usize).min(opts.max_batch)
        } else {
            base_batch
        }
    });

    // Analytic dedup and cache-hit ratios at the actual lookup granularity
    // (one micro-batch) over the *real* vocabulary sizes and skews.
    let hit = apply_analytic_ratios(
        &mut spec,
        data,
        batch.div_ceil(micro),
        if optimizations.caching {
            opts.hot_bytes as f64
        } else {
            0.0
        },
        &warmup,
    );

    let cfg = SimConfig {
        batch_per_executor: batch,
        iterations: opts.iterations,
        machines: opts.machines,
        machine: opts.machine.clone(),
        quantized_comm: opts.quantized_comm,
    };
    let out = simulate(&spec, strategy, &cfg).expect("lowering produced an acyclic task graph");
    let report = TrainingReport::from_simulation(
        label,
        spec.name.clone(),
        &out,
        graph_stats(&spec),
        micro,
        groups,
        hit,
    );
    RunArtifacts {
        report,
        spec,
        warmup,
        output: out,
        pass_reports,
    }
}

/// Sets every chain's `unique_ratio` and `cache_hit_ratio` from the
/// analytic Zipf models at the real vocabulary scale, and returns the
/// ID-mass-weighted overall hit ratio.
///
/// - Dedup: `expected_unique_ratio(vocab, s, ids per lookup)` where a lookup
///   covers one micro-batch of one table.
/// - Cache: HybridHash converges to holding the top-k rows, so the hit
///   ratio is the analytic frequency mass of the `k` rows the table's share
///   of Hot-storage can hold (the per-table share follows the warm-up ID
///   masses, mirroring how the planner splits the budget).
fn apply_analytic_ratios(
    spec: &mut WdlSpec,
    data: &DatasetSpec,
    micro_batch: usize,
    hot_bytes: f64,
    warmup: &WarmupReport,
) -> f64 {
    use picasso_data::distribution::{coverage_top_k, expected_unique_ratio};
    // Per-table aggregates from the dataset.
    let mut table_vocab: BTreeMap<usize, u64> = BTreeMap::new();
    let mut table_skew: BTreeMap<usize, f64> = BTreeMap::new();
    let mut table_ids: BTreeMap<usize, f64> = BTreeMap::new();
    let mut table_dim: BTreeMap<usize, usize> = BTreeMap::new();
    for f in &data.fields {
        table_vocab.insert(f.table_group, f.vocab);
        table_skew.insert(f.table_group, f.dist.exponent());
        table_dim.insert(f.table_group, f.dim);
        *table_ids.entry(f.table_group).or_insert(0.0) += f.avg_ids;
    }
    let mut overall_hit = 0.0;
    for chain in &mut spec.chains {
        let mut unique = 0.0;
        let mut hit = 0.0;
        let mut weight = 0.0;
        for &t in &chain.tables {
            let ids = table_ids[&t] * micro_batch as f64;
            let vocab = table_vocab[&t];
            let s = table_skew[&t];
            let u = expected_unique_ratio(vocab, s, ids);
            let mass = warmup.tables.get(&t).map(|ts| ts.id_mass).unwrap_or(0.0);
            let h = if hot_bytes > 0.0 {
                let rows = hot_bytes * mass / (table_dim[&t] as f64 * 4.0);
                coverage_top_k(vocab, s, rows)
            } else {
                0.0
            };
            unique += u * ids;
            hit += h * ids;
            weight += ids;
            overall_hit += h * mass;
        }
        if weight > 0.0 {
            chain.unique_ratio = unique / weight;
            chain.cache_hit_ratio = hit / weight;
        }
    }
    overall_hit
}

/// Micro-batch heuristic: compute-heavy models pipeline deeper (the Fig. 14
/// observation that CAN and MMoE profit from more micro-batches), but
/// fragmentary graphs (packing disabled) cap the depth — each extra
/// micro-batch re-dispatches every chain's operations, and with hundreds of
/// unpacked chains the framework dispatch cost outweighs the overlap.
fn default_micro_batches(spec: &WdlSpec) -> usize {
    let flops = spec.dense_flops_per_instance();
    let by_compute = if flops > 5e6 {
        4
    } else if flops > 5e5 {
        3
    } else {
        2
    };
    if spec.chains.len() > 64 {
        by_compute.min(2)
    } else {
        by_compute
    }
}

/// Eq. 3-derived group count for the machine's interconnect bounds.
fn auto_groups(spec: &WdlSpec, machine: &MachineSpec, batch: usize) -> usize {
    // Params one group may process per pipeline window on its tightest
    // resource (network and PCIe both move ~4 bytes per parameter).
    let capacity_batch = k_interleaving::eq3_capacity(&[
        (machine.nic_bw * GROUP_WINDOW_SECS, 4.0),
        (machine.pcie_bw * GROUP_WINDOW_SECS, 4.0),
    ]);
    let capacity_per_instance = capacity_batch / batch.max(1) as f64;
    k_interleaving::auto_group_count(spec, capacity_per_instance).clamp(1, 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> TrainerOptions {
        TrainerOptions {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 2000,
                hot_bytes: 1 << 26,
                seed: 3,
            },
            max_batch: 8192,
            ..TrainerOptions::default()
        }
    }

    #[test]
    fn picasso_beats_every_baseline_on_dlrm() {
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        let picasso = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts);
        for baseline in [Framework::TfPs, Framework::Horovod, Framework::PyTorch] {
            let b = train(ModelKind::Dlrm, &data, baseline, &opts);
            assert!(
                picasso.report.ips_per_node > b.report.ips_per_node,
                "PICASSO {} <= {} {}",
                picasso.report.ips_per_node,
                baseline.name(),
                b.report.ips_per_node
            );
        }
    }

    #[test]
    fn packing_reduces_chain_count() {
        let data = DatasetSpec::product1().shared();
        let opts = quick_opts();
        let full = train(ModelKind::WideDeep, &data, Framework::Picasso, &opts);
        let base = train(ModelKind::WideDeep, &data, Framework::PicassoBase, &opts);
        assert!(full.spec.chains.len() < base.spec.chains.len() / 3);
        assert!(
            full.report.op_stats.total_ops < base.report.op_stats.total_ops / 2,
            "packed {} vs baseline {}",
            full.report.op_stats.total_ops,
            base.report.op_stats.total_ops
        );
    }

    #[test]
    fn ablation_every_optimization_contributes() {
        let data = DatasetSpec::product1().shared();
        let opts = quick_opts();
        let full = run(
            ModelKind::WideDeep,
            &data,
            Strategy::Hybrid,
            Optimizations::ALL,
            "full",
            &opts,
        );
        for (label, o) in [
            ("w/o packing", Optimizations::without_packing()),
            ("w/o interleaving", Optimizations::without_interleaving()),
            ("w/o caching", Optimizations::without_caching()),
        ] {
            let r = run(
                ModelKind::WideDeep,
                &data,
                Strategy::Hybrid,
                o,
                label,
                &opts,
            );
            assert!(
                r.report.ips_per_node <= full.report.ips_per_node * 1.03,
                "{label}: {} > full {}",
                r.report.ips_per_node,
                full.report.ips_per_node
            );
        }
    }

    #[test]
    fn caching_improves_cache_hit_and_batch_accounting() {
        let data = DatasetSpec::alibaba().shared();
        let opts = quick_opts();
        let with = train(ModelKind::Din, &data, Framework::Picasso, &opts);
        assert!(with.report.cache_hit_ratio > 0.0);
        let without = run(
            ModelKind::Din,
            &data,
            Strategy::Hybrid,
            Optimizations::without_caching(),
            "w/o caching",
            &opts,
        );
        assert_eq!(without.report.cache_hit_ratio, 0.0);
    }

    #[test]
    fn explicit_knobs_are_respected() {
        let data = DatasetSpec::criteo().shared();
        let mut opts = quick_opts();
        opts.batch_per_executor = Some(1000);
        opts.micro_batches = Some(5);
        opts.groups = Some(3);
        let r = train(ModelKind::DeepFm, &data, Framework::Picasso, &opts);
        assert_eq!(r.report.batch_per_executor, 1000);
        assert_eq!(r.report.micro_batches, 5);
        assert_eq!(r.report.groups, 3);
        assert_eq!(r.spec.micro_batches, 5);
    }

    #[test]
    fn picasso_batch_exceeds_baseline_batch() {
        // The Table VII pattern: micro-batching lets PICASSO run larger
        // effective batches within the same device memory.
        let data = DatasetSpec::criteo().shared();
        let opts = quick_opts();
        let p = train(ModelKind::Dlrm, &data, Framework::Picasso, &opts);
        let b = train(ModelKind::Dlrm, &data, Framework::PicassoBase, &opts);
        assert!(p.report.batch_per_executor >= b.report.batch_per_executor);
    }
}
