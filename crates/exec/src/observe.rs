//! Scheduler-level observability: iteration, executor, micro-batch, and
//! K-group spans derived from a finished simulation.
//!
//! The scheduler emits tasks contiguously per logical scope, so
//! [`ScheduleScopes`] records each scope as a half-open range of engine
//! task ids captured with `Engine::task_count()` snapshots while the graph
//! is built. Spans are then derived *after* the run from the immutable
//! [`RunResult`], which makes the whole layer observation-only: exporting
//! (or not exporting) cannot perturb the schedule, so a run with
//! observability on is bit-identical to one with it off.

use crate::scheduler::SimulationOutput;
use picasso_obs::flight::{FlightConfig, FlightRecorder};
use picasso_obs::{ChromeTrace, ManualClock, MetricKind, MetricsRegistry, Tracer};
use picasso_sim::{Binding, RunResult, SimDuration};

/// Half-open `[start, end)` range of engine task ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskRange {
    /// First task id in the range.
    pub start: usize,
    /// One past the last task id.
    pub end: usize,
}

impl TaskRange {
    /// True when the range contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Number of tasks in the range.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// The `[min start, max end]` wall-clock interval (in sim nanoseconds)
    /// covered by the range's task records, or `None` for an empty range.
    pub fn interval(&self, result: &RunResult) -> Option<(u64, u64)> {
        let end = self.end.min(result.records.len());
        if end <= self.start {
            return None;
        }
        let recs = &result.records[self.start..end];
        let start_ns = recs.iter().map(|r| r.start.as_nanos()).min()?;
        let end_ns = recs.iter().map(|r| r.end.as_nanos()).max()?;
        Some((start_ns, end_ns))
    }
}

/// Tasks of one D-interleaving micro-batch on one executor.
#[derive(Debug, Clone, Default)]
pub struct MicroBatchScope {
    /// Micro-batch index within the iteration.
    pub index: usize,
    /// All tasks of the micro-batch.
    pub range: TaskRange,
    /// Per-K-group sub-ranges of the embedding layer.
    pub groups: Vec<TaskRange>,
}

/// Tasks of one executor within one iteration.
#[derive(Debug, Clone, Default)]
pub struct ExecutorScope {
    /// Executor (GPU worker) index.
    pub executor: usize,
    /// All tasks the executor contributes to the iteration, including the
    /// data prefetch and the dense parameter synchronization.
    pub range: TaskRange,
    /// The executor's micro-batches (only those with a nonzero share).
    pub micro_batches: Vec<MicroBatchScope>,
}

/// Tasks of one training iteration across all executors.
#[derive(Debug, Clone, Default)]
pub struct IterationScope {
    /// Iteration index.
    pub index: usize,
    /// All tasks of the iteration, including the global barrier under
    /// synchronous strategies.
    pub range: TaskRange,
    /// Per-executor sub-scopes.
    pub executors: Vec<ExecutorScope>,
}

/// The scheduler's task-id bookkeeping for a whole run.
#[derive(Debug, Clone, Default)]
pub struct ScheduleScopes {
    /// One scope per simulated iteration, in order.
    pub iterations: Vec<IterationScope>,
}

impl ScheduleScopes {
    /// Total tasks covered by the iteration scopes.
    pub fn task_count(&self) -> usize {
        self.iterations.iter().map(|i| i.range.len()).sum()
    }
}

/// Derives iteration / executor / micro-batch / K-group spans from the
/// finished run, plus iteration-to-iteration flow edges on the `schedule`
/// track. Span timestamps are simulation time (nanoseconds).
pub fn span_tracer(out: &SimulationOutput) -> Tracer<ManualClock> {
    let tracer = Tracer::new(ManualClock::new());
    let result = &out.result;
    let mut prev_end: Option<u64> = None;
    for iter in &out.scopes.iterations {
        let iter_idx = iter.index.to_string();
        if let Some((s, e)) = iter.range.interval(result) {
            tracer.record_span("schedule", "iteration", s, e, &[("iteration", &iter_idx)]);
            if let Some(pe) = prev_end {
                tracer.flow("iteration", "schedule", pe, "schedule", s);
            }
            prev_end = Some(e);
        }
        for ex in &iter.executors {
            let track = format!("exec{}", ex.executor);
            if let Some((s, e)) = ex.range.interval(result) {
                tracer.record_span(&track, "executor", s, e, &[("iteration", &iter_idx)]);
            }
            // Pipelined micro-batches (and staggered K-groups) partially
            // overlap; Perfetto nests overlapping slices by depth, so they
            // share one track per executor.
            let micro_track = format!("{track}/micro");
            let group_track = format!("{track}/groups");
            for mb in &ex.micro_batches {
                let micro_idx = mb.index.to_string();
                if let Some((s, e)) = mb.range.interval(result) {
                    tracer.record_span(
                        &micro_track,
                        "micro_batch",
                        s,
                        e,
                        &[("iteration", &iter_idx), ("micro", &micro_idx)],
                    );
                }
                for (gi, g) in mb.groups.iter().enumerate() {
                    if let Some((s, e)) = g.interval(result) {
                        let group_idx = gi.to_string();
                        tracer.record_span(
                            &group_track,
                            "k_group",
                            s,
                            e,
                            &[("group", &group_idx), ("micro", &micro_idx)],
                        );
                    }
                }
            }
        }
    }
    tracer
}

/// Builds the full Chrome trace of a run: scheduler span tracks on top,
/// one hardware lane per resource below (pinned in declaration order),
/// task slices with dependency flow arrows, and a global frame marker at
/// each iteration start. Counter lanes are added separately from a metrics
/// snapshot via [`ChromeTrace::add_counter_series`].
pub fn chrome_trace(out: &SimulationOutput) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    let result = &out.result;
    // Scheduler tracks first so they sort above the hardware lanes.
    trace.set_sort_index("schedule", -1);
    trace.add_tracer(&span_tracer(out));
    for (i, r) in result.resources.iter().enumerate() {
        trace.set_sort_index(&r.spec.name, 1000 + i as i64);
    }
    for rec in &result.records {
        let lane = &result.resources[rec.resource.0].spec.name;
        let cat = rec.category.to_string();
        let work = format!("{:.0}", rec.work);
        let task = rec.task.0.to_string();
        trace.complete(
            lane,
            &cat,
            &cat,
            rec.start.as_nanos(),
            rec.end.as_nanos(),
            &[("work", &work), ("task", &task)],
        );
        if let Binding::Dependency(producer) = rec.binding {
            let prod = &result.records[producer.0];
            trace.flow(
                "dep",
                &result.resources[prod.resource.0].spec.name,
                prod.end.as_nanos(),
                lane,
                rec.start.as_nanos(),
            );
        }
    }
    for iter in &out.scopes.iterations {
        if let Some((s, _)) = iter.range.interval(result) {
            trace.frame_marker(&format!("iteration {}", iter.index), s);
        }
    }
    // Critical-path highlighting: the causal chain that explains the
    // makespan gets its own track between the schedule and hardware lanes,
    // with chained flow arrows so Perfetto draws the path across lanes.
    let dag = crate::analysis::executed_dag(out);
    let analysis = dag.analyze(
        &[],
        picasso_obs::analysis::PlannedInterleaving {
            micro_batches: 1,
            groups: 1,
        },
    );
    trace.set_sort_index("critical path", 0);
    let mut prev_end: Option<u64> = None;
    for &id in &analysis.critical_path {
        let node = &dag.nodes[id as usize];
        let lane = &result.resources[result.records[id as usize].resource.0]
            .spec
            .name;
        trace.complete(
            "critical path",
            &node.op,
            "critical",
            node.start_ns,
            node.end_ns,
            &[("task", &id.to_string()), ("lane", lane)],
        );
        if let Some(pe) = prev_end {
            trace.flow(
                "critical",
                "critical path",
                pe,
                "critical path",
                node.start_ns,
            );
        }
        prev_end = Some(node.end_ns);
    }
    trace
}

/// Replays a finished run into a bounded flight recorder: per iteration, a
/// span open/close pair, one causal-task event per executed task record
/// (code = task category, timestamped at the task's end on the simulated
/// clock), and an `iteration_secs` metric sample.
///
/// Like every exporter in this module the tap is derived post-hoc from the
/// immutable [`RunResult`], so the recorder observes the run without ever
/// perturbing it, and its dumps digest deterministically for a fixed
/// scenario and config.
pub fn flight_record(out: &SimulationOutput, config: &FlightConfig) -> FlightRecorder {
    let mut rec = FlightRecorder::with_config(config);
    let result = &out.result;
    for iter in &out.scopes.iterations {
        let Some((s, e)) = iter.range.interval(result) else {
            continue;
        };
        let idx = iter.index as u64;
        rec.span_open("iteration", idx, s);
        let end = iter.range.end.min(result.records.len());
        for r in &result.records[iter.range.start..end] {
            rec.task(
                &r.category.to_string(),
                idx,
                r.end.as_nanos(),
                (r.end.as_nanos() - r.start.as_nanos()) as f64 / 1e9,
            );
        }
        rec.metric("iteration_secs", idx, e, (e - s) as f64 / 1e9);
        rec.span_close("iteration", idx, e, (e - s) as f64 / 1e9);
    }
    rec
}

/// The time-series bucket the telemetry layer samples at: 10 ms like DCGM,
/// but never coarser than ~1/200th of the run.
pub fn telemetry_bucket(result: &RunResult) -> SimDuration {
    SimDuration::from_nanos((result.makespan.as_nanos() / 200).clamp(20_000, 10_000_000))
}

/// Exports the run into `registry`: everything
/// [`picasso_sim::export_metrics`] records, plus scheduler-level throughput
/// gauges and a per-iteration duration histogram.
pub fn export_metrics(out: &SimulationOutput, registry: &MetricsRegistry) {
    picasso_sim::export_metrics(&out.result, registry, telemetry_bucket(&out.result));
    crate::calibration::export_metrics(out, registry);
    registry.describe(
        "exec_ips_per_node",
        MetricKind::Gauge,
        "Training throughput, instances per second per machine",
    );
    registry.describe(
        "exec_secs_per_iteration",
        MetricKind::Gauge,
        "Mean seconds per training iteration",
    );
    registry.describe(
        "exec_executors",
        MetricKind::Gauge,
        "GPU workers in the run",
    );
    registry.describe(
        "exec_machines",
        MetricKind::Gauge,
        "Worker machines in the run",
    );
    registry.describe(
        "exec_iterations_total",
        MetricKind::Counter,
        "Training iterations simulated",
    );
    registry.describe(
        "exec_iteration_seconds",
        MetricKind::Histogram,
        "Wall-clock span of each training iteration",
    );
    registry.gauge_set("exec_ips_per_node", &[], out.ips_per_node());
    registry.gauge_set("exec_secs_per_iteration", &[], out.secs_per_iteration());
    registry.gauge_set("exec_executors", &[], out.executors as f64);
    registry.gauge_set("exec_machines", &[], out.machines as f64);
    for iter in &out.scopes.iterations {
        registry.counter_add("exec_iterations_total", &[], 1);
        if let Some((s, e)) = iter.range.interval(&out.result) {
            registry.histogram_observe("exec_iteration_seconds", &[], (e - s) as f64 / 1e9);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{simulate, SimConfig};
    use crate::strategy::Strategy;
    use picasso_data::DatasetSpec;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn run(micro: usize) -> SimulationOutput {
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        spec.micro_batches = micro;
        let cfg = SimConfig {
            batch_per_executor: 1024,
            iterations: 3,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        simulate(&spec, Strategy::Hybrid, &cfg).unwrap()
    }

    #[test]
    fn scopes_partition_every_task() {
        let out = run(2);
        assert_eq!(out.scopes.iterations.len(), 3);
        // Iteration ranges are contiguous and cover the whole task list.
        let mut cursor = 0;
        for iter in &out.scopes.iterations {
            assert_eq!(iter.range.start, cursor);
            cursor = iter.range.end;
            // Executor ranges tile the iteration (barrier excluded).
            assert_eq!(iter.executors.len(), out.executors);
            let mut e_cursor = iter.range.start;
            for ex in &iter.executors {
                assert_eq!(ex.range.start, e_cursor);
                e_cursor = ex.range.end;
                assert_eq!(ex.micro_batches.len(), 2);
                for mb in &ex.micro_batches {
                    assert!(!mb.range.is_empty());
                    assert!(mb.range.start >= ex.range.start);
                    assert!(mb.range.end <= ex.range.end);
                    assert!(!mb.groups.is_empty());
                }
            }
            assert!(e_cursor <= iter.range.end);
        }
        assert_eq!(cursor, out.result.records.len());
        assert_eq!(out.scopes.task_count(), out.result.records.len());
    }

    #[test]
    fn spans_nest_and_cover_the_makespan() {
        let out = run(2);
        let tracer = span_tracer(&out);
        let spans = tracer.spans();
        let iters: Vec<_> = spans.iter().filter(|s| s.name == "iteration").collect();
        assert_eq!(iters.len(), 3);
        assert_eq!(iters[0].start_ns, 0);
        assert_eq!(
            iters.iter().map(|s| s.end_ns).max().unwrap(),
            out.result.makespan.as_nanos()
        );
        let execs = spans.iter().filter(|s| s.name == "executor").count();
        assert_eq!(execs, 3 * out.executors);
        let micros = spans.iter().filter(|s| s.name == "micro_batch").count();
        assert_eq!(micros, 3 * out.executors * 2);
        assert!(spans.iter().any(|s| s.name == "k_group"));
        // Consecutive iterations are linked by flow edges.
        assert_eq!(tracer.flows().len(), 2);
    }

    #[test]
    fn chrome_trace_parses_and_marks_frames() {
        let out = run(1);
        let mut trace = chrome_trace(&out);
        let registry = MetricsRegistry::new();
        export_metrics(&out, &registry);
        trace.add_counter_series(&registry.snapshot());
        let doc = picasso_obs::json::parse(&trace.to_json()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(picasso_obs::Json::items)
            .unwrap();
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(picasso_obs::Json::as_str) == Some(ph))
                .count()
        };
        // One slice per task record + one per derived span.
        assert!(count("X") > out.result.records.len());
        // 3 global frame markers, one per iteration.
        let frames = events
            .iter()
            .filter(|e| e.get("s").and_then(picasso_obs::Json::as_str) == Some("g"))
            .count();
        assert_eq!(frames, 3);
        assert!(count("C") > 0, "counter lanes present");
        assert!(count("s") > 0 && count("s") == count("f"), "flow pairs");
    }

    #[test]
    fn chrome_trace_highlights_the_critical_path() {
        let out = run(2);
        let trace = chrome_trace(&out);
        let doc = picasso_obs::json::parse(&trace.to_json()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(picasso_obs::Json::items)
            .unwrap();
        // The critical-path track exists (thread-name metadata + slices).
        let critical_track = events.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(picasso_obs::Json::as_str)
                == Some("critical path")
        });
        assert!(critical_track, "critical-path track is named");
        // Its slices carry the `critical` category and chained flows exist.
        let slices = events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(picasso_obs::Json::as_str) == Some("critical")
                    && e.get("ph").and_then(picasso_obs::Json::as_str) == Some("X")
            })
            .count();
        assert!(slices > 1, "critical path has more than one node");
        let critical_flows = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(picasso_obs::Json::as_str) == Some("critical")
                    && e.get("ph").and_then(picasso_obs::Json::as_str) == Some("s")
            })
            .count();
        assert_eq!(critical_flows, slices - 1, "one flow per path edge");
    }

    #[test]
    fn flight_tap_is_deterministic_and_covers_every_task() {
        let out = run(2);
        let config = FlightConfig {
            capacity: 1 << 14,
            ..FlightConfig::default()
        };
        let rec = flight_record(&out, &config);
        let stats = rec.stats();
        // 2 span events + 1 metric per iteration + 1 task event per record.
        assert_eq!(
            stats.seen_total(),
            (out.result.records.len() + 3 * out.scopes.iterations.len()) as u64
        );
        assert_eq!(stats.overwritten, 0, "capacity covers the whole run");
        // Same run, same config → byte-identical dump digests.
        let again = flight_record(&out, &config);
        let full = rec.occupancy();
        assert_eq!(rec.dump(full).digest(), again.dump(full).digest());
        // A cramped ring still digests deterministically, just shorter.
        let tiny = FlightConfig {
            capacity: 8,
            ..FlightConfig::default()
        };
        let cramped = flight_record(&out, &tiny);
        assert!(cramped.stats().overwritten > 0);
        assert_eq!(
            cramped.dump(8).digest(),
            flight_record(&out, &tiny).dump(8).digest()
        );
    }

    #[test]
    fn metrics_include_scheduler_gauges() {
        let out = run(1);
        let registry = MetricsRegistry::new();
        export_metrics(&out, &registry);
        assert_eq!(
            registry.gauge_value("exec_ips_per_node", &[]),
            Some(out.ips_per_node())
        );
        assert_eq!(registry.counter_value("exec_iterations_total", &[]), 3);
        let snap = registry.snapshot();
        assert!(snap
            .histograms
            .iter()
            .any(|((name, _), h)| name == "exec_iteration_seconds" && h.count == 3));
        assert!(snap
            .series
            .iter()
            .any(|((name, _), _)| name == "sim_sm_busy"));
    }
}
