//! Stage-surface static analysis: lowers a spec into a [`StageGraph`] and
//! runs the `picasso-lint` stage rules on it *before* the scheduler builds
//! the real task graph.
//!
//! The builder mirrors [`crate::scheduler::simulate`]'s wiring for one
//! executor, one iteration, and the first micro-batch — enough to expose
//! every structural property the stage rules check (control-dependency
//! cycles from `WdlSpec::group_deps`, K-Packed fusion membership,
//! reachability from the data-load entry, and cost-model sanity) without
//! paying for a full cluster lowering. Declared group dependencies are
//! added verbatim, *including* self and backward edges the scheduler would
//! refuse to honor, precisely so the cycle rule can reject them first.

use crate::costs::{self, PlanContext, ResTarget, StageTask};
use crate::scheduler::{split_batch, SimConfig};
use crate::strategy::Strategy;
use picasso_graph::{OpKind, WdlSpec};
use picasso_lint::{
    Diagnostic, EffectSet, Resource, ResourceKind, Severity, Span, StageFusion, StageGraph,
    StageNode,
};

/// Resource class (the vocabulary of `stage.cross-class-fusion`) a stage
/// target is bound by.
fn class_of(target: ResTarget) -> &'static str {
    match target {
        ResTarget::GpuSm => "compute",
        ResTarget::GpuMem => "device_memory",
        ResTarget::Pcie => "intra_comm",
        ResTarget::Dram | ResTarget::ServerDram => "host_memory",
        ResTarget::Cpu => "host_compute",
        ResTarget::Nic | ResTarget::NvLink | ResTarget::ServerNic => "inter_comm",
    }
}

fn node_of(label: String, st: &StageTask, scope: EffectScope) -> StageNode {
    StageNode::new(
        &label,
        &format!("{:?}", st.kind),
        class_of(st.target),
        st.work,
        st.launches,
    )
    .with_effects(stage_effects(st.kind, st.target, scope))
}

/// The namespace a stage's effects resolve their resource keys in:
/// an embedding chain (one Eq. 1 packed shard, cache, dirty set, and
/// collective buffer per chain) or the shared dense tower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectScope {
    /// I/O and barrier stages: no chain or tower attribution.
    Io,
    /// Embedding chain `ci` (Eq. 1 packed shard).
    Chain(usize),
    /// The shared dense tower (interaction modules + MLP + optimizer).
    Dense,
}

impl EffectScope {
    fn key(self) -> String {
        match self {
            EffectScope::Io => "in".to_string(),
            EffectScope::Chain(ci) => format!("c{ci}"),
            EffectScope::Dense => "dense".to_string(),
        }
    }
}

/// Mechanical effect derivation: the declared effect set of one lowered
/// stage, from its op kind, hardware target, and scope. This is the
/// *only* source of effect annotations — they are never hand-written —
/// so the race rules check the lowering itself, and the trace
/// cross-check ([`crate::analysis::crosscheck_races`]) verifies this
/// table against observed overlap.
///
/// Per-micro-batch scratch ops (unique/partition/stitch/segment-reduce,
/// H2D staging) touch only private buffers and derive the empty set.
pub fn stage_effects(kind: OpKind, target: ResTarget, scope: EffectScope) -> EffectSet {
    let key = scope.key();
    let res = |k: ResourceKind| Resource::new(k, key.clone());
    match kind {
        OpKind::DataLoad => EffectSet::empty().read(Resource::new(ResourceKind::InputStream, "in")),
        OpKind::Gather => match target {
            // HybridHash hot rows served from device memory.
            ResTarget::GpuMem => EffectSet::empty().read(res(ResourceKind::CacheHot)),
            _ => EffectSet::empty().read(res(ResourceKind::EmbeddingShard)),
        },
        OpKind::EmbeddingScatter => {
            let store = match target {
                ResTarget::GpuMem => ResourceKind::CacheHot,
                _ => ResourceKind::EmbeddingShard,
            };
            EffectSet::empty()
                .reduce(res(store))
                .reduce(res(ResourceKind::CkptDirty))
        }
        OpKind::Shuffle
        | OpKind::ShuffleStitch
        | OpKind::AllToAll
        | OpKind::AllReduce
        | OpKind::PsPull
        | OpKind::PsPush => EffectSet::empty().write(res(ResourceKind::CollectiveBuffer)),
        OpKind::InteractionCompute | OpKind::MlpCompute => {
            EffectSet::empty().read(Resource::new(ResourceKind::DenseParams, "dense"))
        }
        OpKind::OptimizerApply => EffectSet::empty()
            .write(Resource::new(ResourceKind::DenseParams, "dense"))
            .write(Resource::new(ResourceKind::OptimizerState, "dense")),
        OpKind::Preprocess
        | OpKind::Unique
        | OpKind::Partition
        | OpKind::UniquePartition
        | OpKind::Stitch
        | OpKind::SegmentReduce
        | OpKind::HostToDevice
        | OpKind::Sync => EffectSet::empty(),
    }
}

/// Test/fixture hook for the race analyzer: appends a HybridHash
/// hot-storage refresh stage for chain `ci` to an already-built graph.
/// The refresh *writes* `cache:c<ci>`, so it must be ordered against the
/// chain's device-memory gradient scatter; passing `ordered = false`
/// deliberately drops exactly that edge, seeding the race the analyzer
/// is required to find. Returns `None` when the chain has no
/// device-memory scatter (no cache hits configured).
pub fn inject_cache_refresh(g: &mut StageGraph, ci: usize, ordered: bool) -> Option<usize> {
    let scatter = g.nodes.iter().position(|n| {
        n.label.starts_with(&format!("chain{ci}/b"))
            && n.kind == "EmbeddingScatter"
            && n.class == "device_memory"
    })?;
    let entry = g.nodes.iter().position(|n| n.entry).unwrap_or(0);
    let refresh = g.push(
        StageNode::new(
            &format!("cache{ci}/refresh"),
            "CacheRefresh",
            "device_memory",
            1.0,
            1,
        )
        .with_effects(
            EffectSet::empty().write(Resource::new(ResourceKind::CacheHot, format!("c{ci}"))),
        ),
    );
    // Reachability is kept either way; only the ordering edge against the
    // scatter is at stake.
    g.dep(entry, refresh);
    if ordered {
        g.dep(scatter, refresh);
    }
    Some(refresh)
}

/// The forward half of the lowering, shared between the training builder
/// [`stage_graph`] and the serving builder
/// [`crate::serving::serving_stage_graph`]: data load, grouped embedding
/// forward with the Fig. 8c comm gate and declared group dependencies,
/// interaction modules, and the MLP forward. Node insertion order is part
/// of the contract — race digests hash node indices.
pub(crate) struct ForwardLowering {
    /// The graph so far (forward stages only).
    pub g: StageGraph,
    /// Modules consuming each chain's output.
    pub chain_consumers: Vec<Vec<usize>>,
    /// The MLP forward node (the forward graph's sink).
    pub mlp_fwd: usize,
    /// Cost-model context the backward half continues with.
    pub ctx: PlanContext,
    /// First-micro-batch size the stages were costed at.
    pub b: usize,
}

/// Lowers `spec` into the analyzable stage graph (one executor, one
/// iteration, first micro-batch).
pub fn stage_graph(spec: &WdlSpec, strategy: Strategy, cfg: &SimConfig) -> StageGraph {
    let fl = forward_graph(spec, strategy, cfg);
    backward_half(fl, spec, strategy, cfg)
}

/// Builds the forward half (see [`ForwardLowering`]).
pub(crate) fn forward_graph(
    spec: &WdlSpec,
    strategy: Strategy,
    cfg: &SimConfig,
) -> ForwardLowering {
    let per_node = cfg.machine.gpus_per_node.max(1);
    let ctx = PlanContext {
        n_exec: (cfg.machines * per_node).max(1),
        per_node,
        has_nvlink: cfg.machine.nvlink_bw.is_some(),
        strategy,
        comm_scale: if cfg.quantized_comm { 0.5 } else { 1.0 },
    };
    let micro = spec.micro_batches.max(1);
    let b = split_batch(cfg.batch_per_executor, micro, 0).max(1);

    // Chains ordered into K-interleaving groups (same binning as the
    // scheduler).
    let n_groups = spec.group_count().max(1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, c) in spec.chains.iter().enumerate() {
        groups[(c.group as usize).min(n_groups - 1)].push(i);
    }

    // field -> chain and chain -> consuming modules.
    let max_field = spec
        .chains
        .iter()
        .flat_map(|c| c.fields.iter())
        .copied()
        .max()
        .map(|f| f as usize + 1)
        .unwrap_or(0);
    let mut field_chain = vec![usize::MAX; max_field];
    for (i, c) in spec.chains.iter().enumerate() {
        for &f in &c.fields {
            field_chain[f as usize] = i;
        }
    }
    let mut chain_consumers: Vec<Vec<usize>> = vec![Vec::new(); spec.chains.len()];
    let mut module_chains: Vec<Vec<usize>> = Vec::with_capacity(spec.modules.len());
    for (mi, m) in spec.modules.iter().enumerate() {
        let mut chains: Vec<usize> = m
            .input_fields
            .iter()
            .filter(|&&f| (f as usize) < max_field)
            .map(|&f| field_chain[f as usize])
            .filter(|&c| c != usize::MAX)
            .collect();
        chains.sort_unstable();
        chains.dedup();
        for &c in &chains {
            chain_consumers[c].push(mi);
        }
        module_chains.push(chains);
    }

    let mut g = StageGraph::default();
    let load = g.push(
        StageNode::new(
            "load",
            "DataLoad",
            "io",
            cfg.batch_per_executor as f64 * spec.io_bytes_per_instance / costs::NET_EFF,
            OpKind::DataLoad.micro_ops(),
        )
        .entry()
        .with_effects(stage_effects(
            OpKind::DataLoad,
            ResTarget::Nic,
            EffectScope::Io,
        )),
    );

    // Embedding forward, group by group, with the Fig. 8c comm gate.
    let mut chain_last: Vec<Option<usize>> = vec![None; spec.chains.len()];
    let mut group_comm: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    let mut gate: Vec<usize> = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let mut next_gate: Vec<usize> = Vec::new();
        for &ci in group {
            let chain = &spec.chains[ci];
            let (stages, comm_idx) = costs::chain_forward(chain, b, &ctx);
            let mut fused_unique: Vec<usize> = Vec::new();
            let mut fused_shuffle: Vec<usize> = Vec::new();
            let mut prev: Option<usize> = None;
            for (si, st) in stages.iter().enumerate() {
                let node = g.push(node_of(
                    format!("chain{ci}/f{si}"),
                    st,
                    EffectScope::Chain(ci),
                ));
                match prev {
                    Some(p) => g.dep(p, node),
                    None => g.dep(load, node),
                }
                if si == comm_idx && !chain.interleave_excluded {
                    for &t in &gate {
                        g.dep(t, node);
                    }
                    next_gate.push(node);
                }
                match st.kind {
                    OpKind::UniquePartition => fused_unique.push(node),
                    OpKind::ShuffleStitch => fused_shuffle.push(node),
                    _ => {}
                }
                prev = Some(node);
            }
            chain_last[ci] = prev;
            for (label, nodes) in [
                ("unique_partition", fused_unique),
                ("shuffle_stitch", fused_shuffle),
            ] {
                if !nodes.is_empty() {
                    g.fusions.push(StageFusion {
                        label: format!("chain{ci}/{label}"),
                        nodes,
                    });
                }
            }
        }
        group_comm[gi] = next_gate.clone();
        if !next_gate.is_empty() {
            gate = next_gate;
        }
    }
    // Declared inter-group dependencies, verbatim: a backward or self edge
    // combined with the implicit stagger closes a cycle the analyzer must
    // see, so no direction filtering happens here.
    for &(from, to) in &spec.group_deps {
        let (from, to) = (from as usize, to as usize);
        if from >= n_groups || to >= n_groups {
            continue;
        }
        for &f in &group_comm[from] {
            for &t in &group_comm[to] {
                g.dep(f, t);
            }
        }
    }

    // Interaction modules.
    let mut module_fwd: Vec<usize> = Vec::with_capacity(spec.modules.len());
    for (mi, module) in spec.modules.iter().enumerate() {
        let node = g.push(node_of(
            format!("module{mi}/fwd"),
            &costs::module_forward(module, b),
            EffectScope::Dense,
        ));
        let deps: Vec<usize> = module_chains[mi]
            .iter()
            .filter_map(|&c| chain_last[c])
            .collect();
        if deps.is_empty() {
            g.dep(load, node);
        }
        for d in deps {
            g.dep(d, node);
        }
        module_fwd.push(node);
    }

    // MLP forward.
    let fwd = g.push(node_of(
        "mlp/fwd".into(),
        &costs::mlp_forward(&spec.mlp, b),
        EffectScope::Dense,
    ));
    if module_fwd.is_empty() {
        let lasts: Vec<usize> = chain_last.iter().filter_map(|&t| t).collect();
        if lasts.is_empty() {
            g.dep(load, fwd);
        }
        for d in lasts {
            g.dep(d, fwd);
        }
    } else {
        for &m in &module_fwd {
            g.dep(m, fwd);
        }
    }
    ForwardLowering {
        g,
        chain_consumers,
        mlp_fwd: fwd,
        ctx,
        b,
    }
}

/// Appends the backward half (MLP/module backward, embedding backward,
/// dense sync) to a forward lowering, producing the full training graph.
fn backward_half(
    fl: ForwardLowering,
    spec: &WdlSpec,
    strategy: Strategy,
    cfg: &SimConfig,
) -> StageGraph {
    let ForwardLowering {
        mut g,
        chain_consumers,
        mlp_fwd: fwd,
        ctx,
        b,
    } = fl;
    let bwd = g.push(node_of(
        "mlp/bwd".into(),
        &costs::mlp_backward(&spec.mlp, b),
        EffectScope::Dense,
    ));
    g.dep(fwd, bwd);

    // Module backward.
    let mut module_bwd: Vec<usize> = Vec::with_capacity(spec.modules.len());
    for (mi, module) in spec.modules.iter().enumerate() {
        let node = g.push(node_of(
            format!("module{mi}/bwd"),
            &costs::module_backward(module, b),
            EffectScope::Dense,
        ));
        g.dep(bwd, node);
        module_bwd.push(node);
    }

    // Embedding backward per chain.
    let mut bwd_ends: Vec<usize> = Vec::new();
    for (ci, chain) in spec.chains.iter().enumerate() {
        let deps: Vec<usize> = if chain_consumers[ci].is_empty() {
            vec![bwd]
        } else {
            chain_consumers[ci]
                .iter()
                .map(|&mi| module_bwd[mi])
                .collect()
        };
        let mut prev: Option<usize> = None;
        for (si, st) in costs::chain_backward(chain, b, &ctx).iter().enumerate() {
            let node = g.push(node_of(
                format!("chain{ci}/b{si}"),
                st,
                EffectScope::Chain(ci),
            ));
            match prev {
                Some(p) => g.dep(p, node),
                None => {
                    for &d in &deps {
                        g.dep(d, node);
                    }
                }
            }
            prev = Some(node);
        }
        if let Some(p) = prev {
            bwd_ends.push(p);
        }
    }
    bwd_ends.push(bwd);
    bwd_ends.extend(module_bwd);

    // Dense parameter synchronization.
    let sparse_grad_bytes = if matches!(strategy, Strategy::DataParallel) {
        spec.chains
            .iter()
            .map(|c| {
                cfg.batch_per_executor as f64
                    * c.ids_per_instance
                    * c.unique_ratio
                    * c.dim as f64
                    * 4.0
            })
            .sum()
    } else {
        0.0
    };
    let mut prev: Option<usize> = None;
    for (si, st) in costs::dense_sync_stages(spec.dense_params(), sparse_grad_bytes, &ctx)
        .iter()
        .enumerate()
    {
        let node = g.push(node_of(format!("sync/{si}"), st, EffectScope::Dense));
        match prev {
            Some(p) => g.dep(p, node),
            None => {
                for &d in &bwd_ends {
                    g.dep(d, node);
                }
            }
        }
        prev = Some(node);
    }
    g
}

/// Per-iteration simulator task budget above which `run.hot-path-alloc`
/// fires. The event engine preallocates its dense per-task state (SoA work
/// columns, CSR successor arrays, per-resource ready queues and channel
/// tables) from the task census before the event loop starts; a census past
/// this budget means hundreds of megabytes of bookkeeping and a setup phase
/// that rivals the simulation itself. The bench suite's largest scenario
/// sits around four orders of magnitude below this, so the rule flags
/// runaway configurations (huge cluster × micro-batch products), never the
/// committed models.
pub const HOT_PATH_TASK_BUDGET: usize = 5_000_000;

/// Estimated per-iteration simulator task count for `spec` under `cfg`:
/// the lowered stage graph covers one executor × one micro-batch, and the
/// scheduler replicates it across every executor and micro-batch.
pub fn estimated_tasks_per_iteration(g: &StageGraph, spec: &WdlSpec, cfg: &SimConfig) -> usize {
    let n_exec = (cfg.machines * cfg.machine.gpus_per_node.max(1)).max(1);
    g.nodes.len() * spec.micro_batches.max(1) * n_exec
}

/// The run-surface hot-path rule over an already-lowered graph: warns when
/// the estimated per-iteration task count exceeds
/// [`HOT_PATH_TASK_BUDGET`].
fn hot_path_lint(g: &StageGraph, spec: &WdlSpec, cfg: &SimConfig) -> Option<Diagnostic> {
    let estimated = estimated_tasks_per_iteration(g, spec, cfg);
    if estimated <= HOT_PATH_TASK_BUDGET {
        return None;
    }
    Some(
        Diagnostic::new(
            "run.hot-path-alloc",
            Severity::Warn,
            Span::Run("task-census".into()),
            format!(
                "the lowered graph implies ~{estimated} simulator tasks per iteration \
                 ({} stages x {} micro-batches x {} executors), above the engine's \
                 {HOT_PATH_TASK_BUDGET}-task preallocation budget",
                g.nodes.len(),
                spec.micro_batches.max(1),
                (cfg.machines * cfg.machine.gpus_per_node.max(1)).max(1),
            ),
        )
        .with_hint(
            "lower the micro-batch count or cluster size, or pack the graph harder so fewer \
             stages replicate per executor",
        ),
    )
}

/// Runs the stage-surface rules, plus the run-surface hot-path task-census
/// rule, on the lowered graph of `spec`.
pub fn stage_lints(spec: &WdlSpec, strategy: Strategy, cfg: &SimConfig) -> Vec<Diagnostic> {
    let g = stage_graph(spec, strategy, cfg);
    let mut out = g.analyze();
    out.extend(hot_path_lint(&g, spec, cfg));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::DatasetSpec;
    use picasso_graph::k_interleaving;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn cfg() -> SimConfig {
        SimConfig {
            batch_per_executor: 1024,
            iterations: 1,
            machines: 2,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        }
    }

    #[test]
    fn lowered_dlrm_graph_is_lint_clean() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let diags = stage_lints(&spec, Strategy::Hybrid, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn every_framework_strategy_lowers_clean() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::WideDeep.build(&data);
        for strategy in [
            Strategy::Hybrid,
            Strategy::DataParallel,
            Strategy::PsAsync { servers: 1 },
            Strategy::PsSync { servers: 1 },
        ] {
            let diags = stage_lints(&spec, strategy, &cfg());
            assert!(diags.is_empty(), "{strategy:?}: {diags:?}");
        }
    }

    #[test]
    fn injected_unordered_cache_refresh_is_a_write_write_race() {
        // The seeded-race fixture: a cache-refresh stage that writes the
        // same hot storage as chain 0's gradient scatter. With the
        // ordering edge the graph is clean; dropping it must surface a
        // `race.write-write` error on exactly that resource.
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        for c in &mut spec.chains {
            c.cache_hit_ratio = 0.5; // materialize the GpuMem scatter
        }
        let mut g = stage_graph(&spec, Strategy::Hybrid, &cfg());
        inject_cache_refresh(&mut g, 0, true).expect("hot scatter present");
        assert!(g.static_races().is_empty(), "ordered refresh must be clean");
        assert!(g.analyze().is_empty());

        let mut g = stage_graph(&spec, Strategy::Hybrid, &cfg());
        inject_cache_refresh(&mut g, 0, false).expect("hot scatter present");
        let races = g.static_races();
        // The free-floating refresh races the gradient scatter (write-write)
        // and the forward hot gather (read after unordered write).
        let ww = races
            .iter()
            .find(|r| r.sig.rule == "race.write-write")
            .expect("scatter/refresh write-write race");
        assert_eq!(ww.sig.resource, "cache:c0");
        assert!(ww.labels.0.contains("chain0") || ww.labels.1.contains("chain0"));
        assert!(races
            .iter()
            .all(|r| r.sig.resource == "cache:c0" && r.labels.1 == "cache0/refresh"));
        let diags = g.analyze();
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "race.write-write" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn fused_chains_record_same_class_fusions() {
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        for c in &mut spec.chains {
            c.fused_unique_partition = true;
            c.fused_shuffle_stitch = true;
        }
        let g = stage_graph(&spec, Strategy::Hybrid, &cfg());
        assert_eq!(g.fusions.len(), spec.chains.len() * 2);
        let diags = g.analyze();
        assert!(
            diags.iter().all(|d| d.rule != "stage.cross-class-fusion"),
            "{diags:?}"
        );
    }

    #[test]
    fn hot_path_alloc_fires_on_runaway_census_and_stays_silent_at_suite_scale() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        // The bench-suite shape (single-digit machines, one micro-batch)
        // sits far below the budget.
        let g = stage_graph(&spec, Strategy::Hybrid, &cfg());
        assert!(estimated_tasks_per_iteration(&g, &spec, &cfg()) * 100 < HOT_PATH_TASK_BUDGET);
        let diags = stage_lints(&spec, Strategy::Hybrid, &cfg());
        assert!(diags.iter().all(|d| d.rule != "run.hot-path-alloc"));
        // A runaway cluster x micro-batch product trips the rule.
        let mut spec = spec;
        spec.micro_batches = 64;
        let mut big = cfg();
        big.machines = 4096;
        let diags = stage_lints(&spec, Strategy::Hybrid, &big);
        let hit = diags
            .iter()
            .find(|d| d.rule == "run.hot-path-alloc")
            .expect("budget exceeded must warn");
        assert_eq!(hit.severity, picasso_lint::Severity::Warn);
    }

    #[test]
    fn backward_group_dep_closes_a_cycle() {
        let data = DatasetSpec::criteo();
        let mut spec = k_interleaving::apply(&ModelKind::Dlrm.build(&data), 3);
        assert!(spec.group_count() >= 2, "need at least two groups");
        spec.group_deps = vec![(1, 0)];
        let diags = stage_lints(&spec, Strategy::Hybrid, &cfg());
        assert!(
            diags.iter().any(|d| d.rule == "stage.dependency-cycle"),
            "{diags:?}"
        );
    }

    #[test]
    fn forward_group_dep_stays_acyclic() {
        let data = DatasetSpec::criteo();
        let mut spec = k_interleaving::apply(&ModelKind::Dlrm.build(&data), 3);
        spec.group_deps = vec![(0, spec.group_count() as u32 - 1)];
        let diags = stage_lints(&spec, Strategy::Hybrid, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn out_of_range_group_deps_are_ignored_by_the_builder() {
        // The spec rule `spec.group-dep-range` warns on these; the builder
        // must not panic or fabricate edges.
        let data = DatasetSpec::criteo();
        let mut spec = ModelKind::Dlrm.build(&data);
        spec.group_deps = vec![(7, 9)];
        let diags = stage_lints(&spec, Strategy::Hybrid, &cfg());
        assert!(diags.iter().all(|d| d.rule != "stage.dependency-cycle"));
    }
}
