//! Training-run telemetry: the DCGM-style measurements the paper reports.

use crate::calibration::CalibrationReport;
use crate::scheduler::SimulationOutput;
use picasso_graph::GraphStats;
use picasso_obs::Json;
use picasso_sim::{ResourceKind, ResourceTimeline, RunAnalysis, SimDuration, TaskCategory};
use std::collections::BTreeMap;

/// All metrics of one training run (one framework x model x cluster).
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Framework preset name.
    pub framework: String,
    /// Model name.
    pub model: String,
    /// Instances per second per machine.
    pub ips_per_node: f64,
    /// Seconds per training iteration.
    pub secs_per_iteration: f64,
    /// Instances per executor per iteration.
    pub batch_per_executor: usize,
    /// D-interleaving micro-batches in effect.
    pub micro_batches: usize,
    /// K-interleaving groups in effect.
    pub groups: usize,
    /// Mean GPU SM utilization in percent (DCGM-style).
    pub sm_util_pct: f64,
    /// GPU SM utilization CDF points `(utilization, fraction)` (Fig. 11).
    pub sm_util_cdf: Vec<(f64, f64)>,
    /// Mean PCIe bandwidth in GB/s (Fig. 12 / Table IV).
    pub pcie_gbps: f64,
    /// Mean NVLink bandwidth in GB/s (Fig. 12).
    pub nvlink_gbps: f64,
    /// Mean network bandwidth in Gbit/s (Table IV "Comm.").
    pub network_gbps: f64,
    /// Exposed-time fraction of the makespan per category (Fig. 5).
    pub exposed: BTreeMap<TaskCategory, f64>,
    /// Busy-time fraction per category (may overlap).
    pub busy: BTreeMap<TaskCategory, f64>,
    /// Graph operation statistics (Table V).
    pub op_stats: GraphStats,
    /// Measured HybridHash hit ratio (0 when caching is off).
    pub cache_hit_ratio: f64,
    /// Makespan attribution along the engine's critical path, per resource
    /// kind in seconds — names the bottleneck.
    pub critical_path_secs: Vec<(ResourceKind, f64)>,
    /// Cost-model calibration: predicted vs. observed stage durations per
    /// resource class and operator kind.
    pub calibration: CalibrationReport,
    /// Per-resource busy/idle profile over the run (Fig. 5-style breakdown
    /// for every concrete device, link, and thread pool).
    pub utilization: Vec<ResourceTimeline>,
    /// Executors in the run.
    pub executors: usize,
    /// Worker machines in the run.
    pub machines: usize,
}

impl TrainingReport {
    /// Builds the report from a finished simulation.
    pub fn from_simulation(
        framework: impl Into<String>,
        model: impl Into<String>,
        out: &SimulationOutput,
        op_stats: GraphStats,
        micro_batches: usize,
        groups: usize,
        cache_hit_ratio: f64,
    ) -> TrainingReport {
        let analysis = RunAnalysis::new(&out.result);
        // Sample at 10 ms like DCGM, but never coarser than ~1/50th of the
        // run so short simulations still produce a usable CDF.
        let makespan_ns = out.result.makespan.as_nanos();
        let bucket = SimDuration::from_nanos((makespan_ns / 200).clamp(20_000, 10_000_000));
        let sm = analysis.utilization_avg(ResourceKind::GpuSm, bucket);
        let pcie = analysis.bandwidth(ResourceKind::Pcie, bucket);
        let nvlink = analysis.bandwidth(ResourceKind::NvLink, bucket);
        let net = analysis.bandwidth(ResourceKind::Network, bucket);
        let breakdown = analysis.breakdown();

        // Degenerate shapes (zero executors or machines) divide by 1 instead:
        // the per-device bandwidth fields then report cluster totals rather
        // than poisoning the report with NaN/infinity.
        let per_exec = out.executors.max(1) as f64;
        let per_node = out.machines.max(1) as f64;
        let mut exposed = BTreeMap::new();
        let mut busy = BTreeMap::new();
        for cat in TaskCategory::ALL {
            exposed.insert(cat, breakdown.exposed_fraction(cat));
            let b = breakdown
                .busy
                .get(&cat)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            busy.insert(
                cat,
                b.as_secs_f64() / out.result.makespan.as_secs_f64().max(1e-12),
            );
        }

        let critical_path_secs = out
            .result
            .critical_path_by_kind()
            .into_iter()
            .map(|(k, d)| (k, d.as_secs_f64()))
            .collect();
        TrainingReport {
            framework: framework.into(),
            model: model.into(),
            ips_per_node: out.ips_per_node(),
            secs_per_iteration: out.secs_per_iteration(),
            batch_per_executor: out.batch,
            micro_batches,
            groups,
            sm_util_pct: sm.mean() * 100.0,
            sm_util_cdf: sm.cdf().into_iter().map(|(u, f)| (u * 100.0, f)).collect(),
            pcie_gbps: pcie.mean() / per_exec / 1e9,
            nvlink_gbps: nvlink.mean() / per_node / 1e9,
            network_gbps: net.mean() / per_node * 8.0 / 1e9,
            exposed,
            busy,
            op_stats,
            cache_hit_ratio,
            critical_path_secs,
            calibration: CalibrationReport::from_simulation(out),
            utilization: analysis.resource_timelines(bucket),
            executors: out.executors,
            machines: out.machines,
        }
    }

    /// The resource kind that dominates the critical path (the bottleneck).
    pub fn bottleneck(&self) -> Option<ResourceKind> {
        self.critical_path_secs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite seconds"))
            .map(|&(k, _)| k)
    }

    /// GPU-core-hours to process `instances` at this throughput with
    /// `gpus_total` devices (the Fig. 10 / Table X walltime metric). Zero
    /// when the run had no throughput (degenerate shapes) rather than
    /// infinity.
    pub fn gpu_core_hours(&self, instances: f64) -> f64 {
        let cluster_ips = self.ips_per_node * self.machines as f64;
        if cluster_ips <= 0.0 {
            return 0.0;
        }
        let hours = instances / cluster_ips / 3600.0;
        hours * self.executors as f64
    }

    /// Serializes the report as a JSON document. The field set is pinned by
    /// a golden test; extend it deliberately (and bump the run-report schema
    /// version in `picasso-obs` when the envelope changes shape).
    pub fn to_json(&self) -> Json {
        let fractions = |m: &BTreeMap<TaskCategory, f64>| {
            Json::Obj(
                m.iter()
                    .map(|(cat, v)| (cat.to_string(), Json::from(*v)))
                    .collect(),
            )
        };
        Json::obj([
            ("framework", Json::str(&self.framework)),
            ("model", Json::str(&self.model)),
            ("ips_per_node", self.ips_per_node.into()),
            ("secs_per_iteration", self.secs_per_iteration.into()),
            ("batch_per_executor", self.batch_per_executor.into()),
            ("micro_batches", self.micro_batches.into()),
            ("groups", self.groups.into()),
            ("sm_util_pct", self.sm_util_pct.into()),
            (
                "sm_util_cdf",
                Json::Arr(
                    self.sm_util_cdf
                        .iter()
                        .map(|&(u, f)| Json::Arr(vec![u.into(), f.into()]))
                        .collect(),
                ),
            ),
            ("pcie_gbps", self.pcie_gbps.into()),
            ("nvlink_gbps", self.nvlink_gbps.into()),
            ("network_gbps", self.network_gbps.into()),
            ("exposed", fractions(&self.exposed)),
            ("busy", fractions(&self.busy)),
            (
                "op_stats",
                Json::obj([
                    ("total_ops", self.op_stats.total_ops.into()),
                    ("forward_ops", self.op_stats.forward_ops.into()),
                    ("chain_ops", self.op_stats.chain_ops.into()),
                    ("module_ops", self.op_stats.module_ops.into()),
                    ("mlp_ops", self.op_stats.mlp_ops.into()),
                    ("sync_ops", self.op_stats.sync_ops.into()),
                    ("packed_embeddings", self.op_stats.packed_embeddings.into()),
                ]),
            ),
            ("cache_hit_ratio", self.cache_hit_ratio.into()),
            (
                "critical_path_secs",
                Json::Obj(
                    self.critical_path_secs
                        .iter()
                        .map(|&(kind, secs)| (kind.to_string(), Json::from(secs)))
                        .collect(),
                ),
            ),
            ("calibration", self.calibration.to_json()),
            (
                "utilization",
                Json::Arr(
                    self.utilization
                        .iter()
                        .map(|lane| {
                            Json::obj([
                                ("resource", Json::str(&lane.resource)),
                                ("kind", Json::str(lane.kind.to_string())),
                                ("node", lane.node.into()),
                                ("busy_fraction", lane.busy_fraction.into()),
                                ("idle_fraction", lane.idle_fraction().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("executors", self.executors.into()),
            ("machines", self.machines.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{simulate, SimConfig};
    use crate::strategy::Strategy;
    use picasso_data::DatasetSpec;
    use picasso_graph::graph_stats;
    use picasso_models::ModelKind;
    use picasso_sim::MachineSpec;

    fn report() -> TrainingReport {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let cfg = SimConfig {
            batch_per_executor: 2048,
            iterations: 3,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let out = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        TrainingReport::from_simulation("test", "DLRM", &out, graph_stats(&spec), 1, 1, 0.0)
    }

    #[test]
    fn report_fields_are_sane() {
        let r = report();
        assert!(r.ips_per_node > 0.0);
        assert!(r.secs_per_iteration > 0.0);
        assert!((0.0..=100.0).contains(&r.sm_util_pct), "{}", r.sm_util_pct);
        assert!(!r.sm_util_cdf.is_empty());
        assert!(r.pcie_gbps >= 0.0);
        assert!(r.network_gbps >= 0.0);
        let exposed_total: f64 = r.exposed.values().sum();
        assert!(
            exposed_total <= 1.0 + 1e-9,
            "exposures partition the makespan"
        );
    }

    #[test]
    fn gpu_core_hours_scale_with_instances() {
        let r = report();
        let h1 = r.gpu_core_hours(1e9);
        let h2 = r.gpu_core_hours(2e9);
        assert!((h2 / h1 - 2.0).abs() < 1e-9);
        assert!(h1 > 0.0);
    }

    #[test]
    fn bottleneck_is_reported() {
        let r = report();
        assert!(!r.critical_path_secs.is_empty());
        assert!(r.bottleneck().is_some());
        let total: f64 = r.critical_path_secs.iter().map(|&(_, s)| s).sum();
        assert!(total > 0.0 && total <= r.secs_per_iteration * 3.0 * 1.01);
    }

    #[test]
    fn to_json_pins_the_field_set() {
        let r = report();
        let json = r.to_json();
        let Json::Obj(fields) = &json else {
            panic!("report serializes to an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        // Golden field set: additions/removals/renames must be deliberate —
        // downstream run-report consumers key on these names.
        assert_eq!(
            keys,
            [
                "framework",
                "model",
                "ips_per_node",
                "secs_per_iteration",
                "batch_per_executor",
                "micro_batches",
                "groups",
                "sm_util_pct",
                "sm_util_cdf",
                "pcie_gbps",
                "nvlink_gbps",
                "network_gbps",
                "exposed",
                "busy",
                "op_stats",
                "cache_hit_ratio",
                "critical_path_secs",
                "calibration",
                "utilization",
                "executors",
                "machines",
            ]
        );
        // The document round-trips through the parser with values intact.
        let parsed = picasso_obs::json::parse(&json.to_json()).unwrap();
        assert_eq!(parsed.get("model").and_then(Json::as_str), Some("DLRM"));
        assert_eq!(
            parsed.get("ips_per_node").and_then(Json::as_f64),
            Some(r.ips_per_node)
        );
        assert_eq!(
            parsed
                .get("op_stats")
                .and_then(|o| o.get("total_ops"))
                .and_then(Json::as_u64),
            Some(r.op_stats.total_ops)
        );
        assert_eq!(
            parsed
                .get("exposed")
                .and_then(|o| o.get("communication"))
                .and_then(Json::as_f64),
            r.exposed.get(&TaskCategory::Communication).copied()
        );
    }

    #[test]
    fn report_carries_calibration_and_utilization() {
        let r = report();
        assert!(!r.calibration.is_empty());
        assert!(!r.utilization.is_empty());
        // Every executor's SM shows up as a profiled resource, and at least
        // one resource did real work.
        assert!(r.utilization.iter().any(|l| l.kind == ResourceKind::GpuSm));
        assert!(r.utilization.iter().any(|l| l.busy_fraction > 0.0));
        let json = r.to_json();
        let lanes = json.get("utilization").and_then(Json::items).unwrap();
        assert_eq!(lanes.len(), r.utilization.len());
        let first = &lanes[0];
        let busy = first.get("busy_fraction").and_then(Json::as_f64).unwrap();
        let idle = first.get("idle_fraction").and_then(Json::as_f64).unwrap();
        assert!((busy + idle - 1.0).abs() < 1e-9);
        assert!(first.get("node").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn zero_iteration_run_reports_zeroes_not_nan() {
        let data = DatasetSpec::criteo();
        let spec = ModelKind::Dlrm.build(&data);
        let cfg = SimConfig {
            batch_per_executor: 1024,
            iterations: 0,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let out = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        assert!(out.result.records.is_empty());
        assert_eq!(out.ips_per_node(), 0.0);
        assert_eq!(out.secs_per_iteration(), 0.0);
        let r = TrainingReport::from_simulation("t", "DLRM", &out, graph_stats(&spec), 1, 1, 0.0);
        assert_eq!(r.ips_per_node, 0.0);
        assert_eq!(r.secs_per_iteration, 0.0);
        assert_eq!(r.gpu_core_hours(1e9), 0.0, "no throughput, not infinity");
        assert!(r.sm_util_cdf.is_empty());
        // The degenerate report still serializes cleanly.
        assert!(picasso_obs::json::parse(&r.to_json().to_json()).is_ok());
    }

    #[test]
    fn empty_graph_simulates_and_reports() {
        // A spec with no chains and no modules still has IO + MLP + sync.
        let spec = picasso_graph::WdlSpec {
            name: "empty".into(),
            io_bytes_per_instance: 8.0,
            chains: vec![],
            modules: vec![],
            mlp: picasso_graph::MlpSpec::new(8, vec![16, 1]),
            micro_batches: 1,
            interleave_from: picasso_graph::Layer::Embedding,
            group_deps: Vec::new(),
        };
        let cfg = SimConfig {
            batch_per_executor: 256,
            iterations: 2,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        };
        let out = simulate(&spec, Strategy::Hybrid, &cfg).unwrap();
        assert!(out.result.makespan.as_secs_f64() > 0.0);
        let r = TrainingReport::from_simulation("t", "empty", &out, graph_stats(&spec), 1, 1, 0.0);
        assert!(r.ips_per_node > 0.0);
        assert!(r.gpu_core_hours(1e6).is_finite());
    }

    #[test]
    fn machines_zero_is_guarded_everywhere() {
        let mut r = report();
        r.machines = 0;
        r.ips_per_node = 0.0;
        assert_eq!(r.gpu_core_hours(1e9), 0.0);
    }

    #[test]
    fn cdf_is_normalized() {
        let r = report();
        let last = r.sm_util_cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
        for w in r.sm_util_cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }
}
