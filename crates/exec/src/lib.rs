//! # picasso-exec
//!
//! The distributed execution engine of the PICASSO reproduction: training
//! strategies (PS / DP / MP / hybrid), collective-communication cost
//! models, warm-up measurement over real data, the scheduler that lowers
//! logical WDL graphs onto the simulated cluster, framework presets
//! (TF-PS, PyTorch, Horovod, XDL, PICASSO), and the end-to-end trainer
//! that produces the paper's telemetry.
//!
//! ```no_run
//! use picasso_data::DatasetSpec;
//! use picasso_exec::{train, Framework, ModelKind, TrainerOptions};
//!
//! let data = DatasetSpec::criteo().shared();
//! let run = train(ModelKind::Dlrm, &data, Framework::Picasso, &TrainerOptions::default())
//!     .expect("valid pipeline and task graph");
//! println!("{:.0} instances/sec/node", run.report.ips_per_node);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod calibration;
pub mod collectives;
pub mod costs;
pub mod framework;
pub mod lint;
pub mod observe;
pub mod recovery;
pub mod scheduler;
pub mod serving;
pub mod strategy;
pub mod telemetry;
pub mod trainer;
pub mod warmup;

pub use analysis::{
    analysis_report_json, analyze_run, crosscheck_races, executed_dag, export_analysis_metrics,
    lint_analysis, observed_conflicts, overlap_pairs, ObservedOverlap, RACE_CHECK_RUNS,
};
pub use calibration::{CalibrationReport, CalibrationStats, CostRecord};
pub use framework::{Framework, Optimizations};
pub use lint::{stage_graph, stage_lints};
pub use observe::{chrome_trace, flight_record, span_tracer, ScheduleScopes, TaskRange};
pub use picasso_graph::{Diagnostic, LintReport, PassId, PipelineConfig, PipelineError, Severity};
pub use picasso_lint::effects::RaceSig;
pub use picasso_lint::{StageEdge, StageFusion, StageGraph, StageNode, StaticRace};
pub use picasso_models::ModelKind;
pub use recovery::{
    lint_flight, lint_recovery, run_recovery, CkptRecord, RecoveryEvent, RecoveryOptions,
    RecoveryRun,
};
pub use scheduler::{simulate, CausalStage, SimConfig, SimulationOutput};
pub use serving::{
    forward_latency_ns, prepare_serving, serving_lints, serving_stage_graph, ServingPlan,
};
pub use strategy::{DenseSync, EmbeddingExchange, Strategy};
pub use telemetry::TrainingReport;
pub use trainer::{
    lint, run, train, RunArtifacts, TrainError, TrainerOptions, MEMORY_AMPLIFICATION,
};
pub use warmup::{run_warmup, TableStats, WarmupConfig, WarmupReport};
