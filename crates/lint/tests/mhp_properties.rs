//! Property-based tests of the may-happen-in-parallel relation.
//!
//! The race rules are only as trustworthy as the relation under them, so
//! the algebra is pinned on random stage graphs (cyclic edges allowed —
//! the relation must degrade gracefully, the cycle rule owns the error):
//!
//! - **irreflexive**: no node is MHP with itself;
//! - **symmetric**: `mhp(a, b) == mhp(b, a)`;
//! - **anti-monotone under edge addition**: adding an ordering edge
//!   never creates a new MHP pair (it can only order formerly-free
//!   pairs), so tightening a schedule can never *introduce* a race.

use picasso_lint::MhpRelation;
use proptest::prelude::*;

/// A random directed graph: `n` nodes and arbitrary (possibly cyclic,
/// possibly self-looping) edges.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1usize..16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..32);
        edges.prop_map(move |e| (n, e))
    })
}

proptest! {
    #[test]
    fn mhp_is_irreflexive(g in graph_strategy()) {
        let (n, edges) = g;
        let rel = MhpRelation::new(n, &edges);
        for i in 0..n {
            prop_assert!(!rel.mhp(i, i), "node {i} MHP with itself");
        }
    }

    #[test]
    fn mhp_is_symmetric(g in graph_strategy()) {
        let (n, edges) = g;
        let rel = MhpRelation::new(n, &edges);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(rel.mhp(a, b), rel.mhp(b, a));
            }
        }
    }

    #[test]
    fn mhp_is_anti_monotone_under_edge_addition(
        g in graph_strategy(),
        extra in (0usize..16, 0usize..16),
    ) {
        let (n, edges) = g;
        let before = MhpRelation::new(n, &edges);
        let mut more = edges.clone();
        more.push((extra.0 % n, extra.1 % n));
        let after = MhpRelation::new(n, &more);
        // Every pair MHP after the extra edge was already MHP before:
        // adding an ordering edge can only shrink the relation.
        for (a, b) in after.pairs() {
            prop_assert!(
                before.mhp(a, b),
                "edge addition created MHP pair ({a}, {b})"
            );
        }
    }

    #[test]
    fn ordered_and_mhp_partition_distinct_pairs(g in graph_strategy()) {
        let (n, edges) = g;
        let rel = MhpRelation::new(n, &edges);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    prop_assert!(rel.ordered(a, b) != rel.mhp(a, b));
                }
            }
        }
    }
}

#[test]
fn transitive_closure_matches_a_reference_floyd_warshall() {
    // A fixed adversarial graph: two diamonds sharing a spine plus a
    // 3-cycle, checked against an O(n^3) reference closure.
    let n = 8;
    let edges = [
        (0, 1),
        (0, 2),
        (1, 3),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 4), // cycle 4 -> 5 -> 6 -> 4
        (0, 7),
    ];
    let mut reach = vec![vec![false; n]; n];
    for &(a, b) in &edges {
        reach[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    let rel = MhpRelation::new(n, &edges);
    for (i, row) in reach.iter().enumerate() {
        for (j, &expected) in row.iter().enumerate() {
            assert_eq!(rel.reaches(i, j), expected, "reach({i}, {j})");
        }
    }
}
