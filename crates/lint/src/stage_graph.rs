//! A backend-agnostic model of the lowered execution graph, plus the
//! stage-surface rules.
//!
//! `picasso-exec` lowers a `WdlSpec` into per-resource stage tasks; this
//! module models just enough of that graph — labels, resource classes,
//! predicted costs, dependency edges, and which nodes were fused into one
//! kernel — for the analyzer to check the invariants that the simulation
//! engine either cannot see (a cyclic spec never reaches it) or would
//! only surface as silently-wrong numbers (zero-cost calibration points).

use crate::effects::{EffectSet, RaceAllowlist};
use crate::{mhp, Diagnostic, Severity, Span};

/// One lowered stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageNode {
    /// Unique human-readable label (`chain2/shuffle_stitch`, `mlp/fwd`).
    pub label: String,
    /// Operator kind name (informational).
    pub kind: String,
    /// Hardware resource class the stage is bound by (`compute`,
    /// `device_memory`, `host_memory`, `intra_comm`, `inter_comm`,
    /// `host_compute`, `io`).
    pub class: String,
    /// Predicted cost in abstract work units (bytes or FLOPs).
    pub cost: f64,
    /// Kernel-launch count the stage contributes (dispatch overhead);
    /// a stage with zero cost *and* zero launches predicts zero time.
    pub launches: u32,
    /// True for graph entry points (stages with no intrinsic inputs,
    /// e.g. the data-load stage).
    pub entry: bool,
    /// Declared effect set over shared resources (empty = pure); checked
    /// by the `race.*` rules against the MHP relation.
    pub effects: EffectSet,
}

impl StageNode {
    /// A new stage node (non-entry).
    pub fn new(label: &str, kind: &str, class: &str, cost: f64, launches: u32) -> StageNode {
        StageNode {
            label: label.to_string(),
            kind: kind.to_string(),
            class: class.to_string(),
            cost,
            launches,
            entry: false,
            effects: EffectSet::empty(),
        }
    }

    /// Marks the node as a graph entry point (builder style).
    pub fn entry(mut self) -> StageNode {
        self.entry = true;
        self
    }

    /// Attaches the declared effect set (builder style).
    pub fn with_effects(mut self, effects: EffectSet) -> StageNode {
        self.effects = effects;
        self
    }
}

/// A control dependency: `to` may start only after `from` completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEdge {
    /// Index of the prerequisite node.
    pub from: usize,
    /// Index of the dependent node.
    pub to: usize,
}

/// A set of stages fused into one kernel by K-Packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFusion {
    /// Label of the fused kernel (e.g. `chain0/shuffle_stitch`).
    pub label: String,
    /// Node indices lowered from the fused kernel. The fusion is legal
    /// only when every member is bound by the same resource class.
    pub nodes: Vec<usize>,
}

/// The lowered execution graph handed to the stage-surface rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageGraph {
    /// All stages.
    pub nodes: Vec<StageNode>,
    /// Control-dependency edges between stages.
    pub edges: Vec<StageEdge>,
    /// K-Packed kernels and the stages they lowered to.
    pub fusions: Vec<StageFusion>,
}

impl StageGraph {
    /// Adds a node and returns its index.
    pub fn push(&mut self, node: StageNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a dependency edge `from -> to`.
    pub fn dep(&mut self, from: usize, to: usize) {
        self.edges.push(StageEdge { from, to });
    }

    /// Runs every stage-surface rule (including the `race.*` rules over
    /// the declared effect sets) and returns the findings.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.check_cycles(&mut out);
        self.check_fusions(&mut out);
        self.check_reachability(&mut out);
        self.check_costs(&mut out);
        self.check_races(&mut out);
        out
    }

    /// Every statically-detected race: MHP pairs with conflicting
    /// declared effects, under the default commutative allowlist.
    pub fn static_races(&self) -> Vec<mhp::StaticRace> {
        mhp::static_races(self, &RaceAllowlist::default())
    }

    /// `race.*`: flags MHP pairs whose declared effects conflict.
    fn check_races(&self, out: &mut Vec<Diagnostic>) {
        out.extend(mhp::race_diagnostics(&self.static_races()));
    }

    /// `stage.dependency-cycle`: Kahn's algorithm; any node left with a
    /// nonzero in-degree sits on (or downstream of) a cycle. The cycle
    /// itself is recovered by walking unresolved predecessors.
    fn check_cycles(&self, out: &mut Vec<Diagnostic>) {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.from < n && e.to < n {
                indeg[e.to] += 1;
                succ[e.from].push(e.to);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut done = 0usize;
        while let Some(i) = ready.pop() {
            done += 1;
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        if done == n {
            return;
        }
        // Recover one concrete cycle among the stuck nodes: repeatedly
        // step to an unresolved predecessor until a node repeats.
        let stuck: Vec<usize> = (0..n).filter(|&i| indeg[i] > 0).collect();
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if indeg[e.from] > 0 && indeg[e.to] > 0 {
                pred[e.to].push(e.from);
            }
        }
        let mut path = vec![stuck[0]];
        let cycle = loop {
            let cur = *path.last().unwrap();
            let prev = pred[cur][0];
            if let Some(pos) = path.iter().position(|&x| x == prev) {
                let mut cycle: Vec<usize> = path[pos..].to_vec();
                cycle.reverse();
                cycle.push(prev);
                break cycle;
            }
            path.push(prev);
        };
        let labels: Vec<&str> = cycle
            .iter()
            .map(|&i| self.nodes[i].label.as_str())
            .collect();
        out.push(
            Diagnostic::new(
                "stage.dependency-cycle",
                Severity::Error,
                Span::Stage(self.nodes[cycle[0]].label.clone()),
                format!(
                    "control dependencies form a cycle ({} stage(s) can never start): {}",
                    stuck.len(),
                    labels.join(" -> "),
                ),
            )
            .with_hint("break the cycle: group dependencies must point at earlier groups only"),
        );
    }

    /// `stage.cross-class-fusion`: every stage lowered from one fused
    /// kernel must be bound by the same resource class.
    fn check_fusions(&self, out: &mut Vec<Diagnostic>) {
        for fusion in &self.fusions {
            let mut classes: Vec<&str> = fusion
                .nodes
                .iter()
                .filter_map(|&i| self.nodes.get(i))
                .map(|node| node.class.as_str())
                .collect();
            classes.sort_unstable();
            classes.dedup();
            if classes.len() > 1 {
                out.push(
                    Diagnostic::new(
                        "stage.cross-class-fusion",
                        Severity::Error,
                        Span::Stage(fusion.label.clone()),
                        format!(
                            "fused kernel spans {} resource classes ({})",
                            classes.len(),
                            classes.join(", "),
                        ),
                    )
                    .with_hint("K-Packing may only fuse ops bound by the same resource class"),
                );
            }
        }
    }

    /// `stage.unreachable`: nodes not reachable from any entry node. With
    /// no declared entries the rule is vacuous (nothing to reach from).
    fn check_reachability(&self, out: &mut Vec<Diagnostic>) {
        if !self.nodes.iter().any(|node| node.entry) {
            return;
        }
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.from < n && e.to < n {
                succ[e.from].push(e.to);
            }
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| self.nodes[i].entry).collect();
        for &i in &stack {
            seen[i] = true;
        }
        while let Some(i) = stack.pop() {
            for &j in &succ[i] {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !seen[i] {
                out.push(
                    Diagnostic::new(
                        "stage.unreachable",
                        Severity::Warn,
                        Span::Stage(node.label.clone()),
                        "stage is unreachable from the graph entry points and will never run",
                    )
                    .with_hint("connect the stage to the data-load entry or remove it"),
                );
            }
        }
    }

    /// `stage.cost-sanity` / `stage.zero-cost`: negative or non-finite
    /// predicted costs are errors; a stage with zero cost *and* zero
    /// launches predicts zero time, which calibration cannot divide by.
    fn check_costs(&self, out: &mut Vec<Diagnostic>) {
        for node in &self.nodes {
            if node.cost < 0.0 || !node.cost.is_finite() {
                out.push(
                    Diagnostic::new(
                        "stage.cost-sanity",
                        Severity::Error,
                        Span::Stage(node.label.clone()),
                        format!("stage predicts an invalid cost ({})", node.cost),
                    )
                    .with_hint("cost-model inputs must be finite and non-negative"),
                );
            } else if node.cost == 0.0 && node.launches == 0 {
                out.push(
                    Diagnostic::new(
                        "stage.zero-cost",
                        Severity::Warn,
                        Span::Stage(node.label.clone()),
                        "stage predicts exactly zero cost (no work, no launches)",
                    )
                    .with_hint("zero-cost stages corrupt calibration ratios; drop or cost them"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// entry -> a -> b, all costed: clean for every rule.
    fn clean_graph() -> StageGraph {
        let mut g = StageGraph::default();
        let load = g.push(StageNode::new("load", "DataLoad", "io", 64.0, 1).entry());
        let a = g.push(StageNode::new(
            "chain0/gather",
            "Gather",
            "host_memory",
            32.0,
            1,
        ));
        let b = g.push(StageNode::new(
            "chain0/reduce",
            "SegmentReduce",
            "device_memory",
            8.0,
            1,
        ));
        g.dep(load, a);
        g.dep(a, b);
        g
    }

    #[test]
    fn clean_graph_has_no_findings() {
        assert!(clean_graph().analyze().is_empty());
    }

    #[test]
    fn cycle_is_detected_with_its_path() {
        let mut g = clean_graph();
        // b -> a closes a cycle with the existing a -> b.
        g.dep(2, 1);
        let diags = g.analyze();
        let cycle: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "stage.dependency-cycle")
            .collect();
        assert_eq!(cycle.len(), 1, "{diags:?}");
        assert_eq!(cycle[0].severity, Severity::Error);
        assert!(cycle[0].message.contains("chain0/gather"));
        assert!(cycle[0].message.contains("chain0/reduce"));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let mut g = clean_graph();
        g.dep(1, 1);
        let diags = g.analyze();
        assert!(diags.iter().any(|d| d.rule == "stage.dependency-cycle"));
    }

    #[test]
    fn same_class_fusion_is_clean() {
        let mut g = clean_graph();
        let s1 = g.push(StageNode::new(
            "chain0/shuffle",
            "Shuffle",
            "inter_comm",
            10.0,
            1,
        ));
        let s2 = g.push(StageNode::new(
            "chain0/stitch",
            "Stitch",
            "inter_comm",
            10.0,
            1,
        ));
        g.dep(0, s1);
        g.dep(s1, s2);
        g.fusions.push(StageFusion {
            label: "chain0/shuffle_stitch".into(),
            nodes: vec![s1, s2],
        });
        assert!(g.analyze().is_empty());
    }

    #[test]
    fn cross_class_fusion_is_an_error() {
        let mut g = clean_graph();
        let s1 = g.push(StageNode::new(
            "chain0/shuffle",
            "Shuffle",
            "inter_comm",
            10.0,
            1,
        ));
        let s2 = g.push(StageNode::new(
            "chain0/reduce2",
            "SegmentReduce",
            "compute",
            10.0,
            1,
        ));
        g.dep(0, s1);
        g.dep(0, s2);
        g.fusions.push(StageFusion {
            label: "chain0/bad_fuse".into(),
            nodes: vec![s1, s2],
        });
        let diags = g.analyze();
        let fusion: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "stage.cross-class-fusion")
            .collect();
        assert_eq!(fusion.len(), 1);
        assert!(fusion[0].message.contains("compute, inter_comm"));
    }

    #[test]
    fn disconnected_stage_is_unreachable() {
        let mut g = clean_graph();
        g.push(StageNode::new("orphan", "Gather", "host_memory", 5.0, 1));
        let diags = g.analyze();
        let unreachable: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "stage.unreachable")
            .collect();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(unreachable[0].severity, Severity::Warn);
        assert_eq!(unreachable[0].span, crate::Span::Stage("orphan".into()));
    }

    #[test]
    fn reachability_is_vacuous_without_entries() {
        let mut g = StageGraph::default();
        g.push(StageNode::new("a", "Gather", "host_memory", 5.0, 1));
        assert!(g.analyze().iter().all(|d| d.rule != "stage.unreachable"));
    }

    #[test]
    fn negative_and_nan_costs_are_errors() {
        let mut g = clean_graph();
        let bad = g.push(StageNode::new("neg", "Gather", "host_memory", -1.0, 1));
        let nan = g.push(StageNode::new("nan", "Gather", "host_memory", f64::NAN, 1));
        g.dep(0, bad);
        g.dep(0, nan);
        let diags = g.analyze();
        let costs: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "stage.cost-sanity")
            .collect();
        assert_eq!(costs.len(), 2);
        assert!(costs.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn analyze_runs_the_race_rules_over_declared_effects() {
        use crate::effects::{EffectSet, Resource, ResourceKind};
        let mut g = clean_graph();
        // Two unordered stages both writing chain 0's hot cache rows.
        let r = Resource::new(ResourceKind::CacheHot, "c0");
        let a = g.push(
            StageNode::new(
                "chain0/scatter",
                "EmbeddingScatter",
                "device_memory",
                4.0,
                1,
            )
            .with_effects(EffectSet::empty().write(r.clone())),
        );
        let b = g.push(
            StageNode::new("cache0/refresh", "CacheRefresh", "device_memory", 4.0, 1)
                .with_effects(EffectSet::empty().write(r)),
        );
        g.dep(0, a);
        g.dep(0, b);
        let diags = g.analyze();
        let races: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "race.write-write")
            .collect();
        assert_eq!(races.len(), 1, "{diags:?}");
        assert_eq!(races[0].severity, Severity::Error);
        // Ordering the pair silences the finding.
        g.dep(a, b);
        assert!(g.analyze().iter().all(|d| d.rule != "race.write-write"));
    }

    #[test]
    fn zero_cost_zero_launch_stage_warns_but_launches_excuse_zero_work() {
        let mut g = clean_graph();
        let free = g.push(StageNode::new("free", "Shuffle", "inter_comm", 0.0, 0));
        let overhead_only = g.push(StageNode::new("dispatch", "Shuffle", "inter_comm", 0.0, 2));
        g.dep(0, free);
        g.dep(0, overhead_only);
        let diags = g.analyze();
        let zero: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == "stage.zero-cost")
            .collect();
        assert_eq!(zero.len(), 1);
        assert_eq!(zero[0].span, crate::Span::Stage("free".into()));
    }
}
