//! The effect grammar: typed resources, access modes, and conflict
//! classification.
//!
//! PICASSO's whole value proposition is aggressive overlap — D/K-packing
//! and D/K-interleaving deliberately run embedding gathers, collectives,
//! and dense compute concurrently — which is exactly where silent
//! lost-update and write-write hazards hide. This module gives every
//! lowered stage a *declared effect set*: which shared resources it
//! touches and how. The MHP analyzer ([`crate::mhp`]) then flags every
//! conflicting pair with no ordering path between them.
//!
//! Effects are derived mechanically in `picasso-exec` from the op kind,
//! hardware target, and pass plan — they are not hand-annotated, so the
//! grammar stays small: three access modes over seven resource kinds,
//! keyed by the packed chain (Eq. 1 shard) or the dense tower they
//! belong to.

use serde::{Deserialize, Serialize};

/// How a stage accesses a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessMode {
    /// Reads the resource; any number of concurrent readers is safe.
    Read,
    /// Accumulates into the resource with a commutative, associative
    /// reduction (scatter-add). Concurrent `ReduceAdd`s to the same
    /// resource commute *if* the resource kind is on the commutative
    /// allowlist; against a `Read` or `Write` they conflict like a write.
    ReduceAdd,
    /// Overwrites the resource; conflicts with every concurrent access.
    Write,
}

impl AccessMode {
    /// Stable lowercase name used in rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            AccessMode::Read => "read",
            AccessMode::ReduceAdd => "reduce-add",
            AccessMode::Write => "write",
        }
    }
}

/// The kinds of shared state a lowered stage can touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A packed embedding table shard (Eq. 1), keyed by chain.
    EmbeddingShard,
    /// The HybridHash hot (device-resident) storage of a cached chain.
    CacheHot,
    /// Dense tower parameters (interaction + MLP weights).
    DenseParams,
    /// Dense optimizer state (moments, step counters).
    OptimizerState,
    /// The incremental-checkpoint dirty-ID set of a chain.
    CkptDirty,
    /// A collective's staging buffer (shuffle / all-to-all / all-reduce).
    CollectiveBuffer,
    /// The input sample stream handed out by the data loader.
    InputStream,
}

impl ResourceKind {
    /// Stable short name (also the resource-key prefix).
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::EmbeddingShard => "shard",
            ResourceKind::CacheHot => "cache",
            ResourceKind::DenseParams => "params",
            ResourceKind::OptimizerState => "opt",
            ResourceKind::CkptDirty => "dirty",
            ResourceKind::CollectiveBuffer => "coll",
            ResourceKind::InputStream => "stream",
        }
    }
}

/// One concrete resource instance: a kind plus an instance key
/// (`c3` for chain 3's shard, `dense` for the shared tower).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Resource {
    /// What kind of state this is.
    pub kind: ResourceKind,
    /// Which instance (chain key or `dense`).
    pub key: String,
}

impl Resource {
    /// A new resource instance.
    pub fn new(kind: ResourceKind, key: impl Into<String>) -> Resource {
        Resource {
            kind,
            key: key.into(),
        }
    }
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.kind.name(), self.key)
    }
}

/// One declared access: a mode over a resource.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Effect {
    /// How the resource is accessed.
    pub mode: AccessMode,
    /// Which resource.
    pub resource: Resource,
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.mode.name(), self.resource)
    }
}

/// The declared effect set of one stage. Most stages are pure with
/// respect to shared state (per-micro-batch scratch is private) and
/// carry an empty set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffectSet {
    /// The declared accesses, in derivation order.
    pub effects: Vec<Effect>,
}

impl EffectSet {
    /// The empty (pure) effect set.
    pub fn empty() -> EffectSet {
        EffectSet::default()
    }

    /// Builder: adds a `Read` of `resource`.
    pub fn read(mut self, resource: Resource) -> EffectSet {
        self.effects.push(Effect {
            mode: AccessMode::Read,
            resource,
        });
        self
    }

    /// Builder: adds a `Write` of `resource`.
    pub fn write(mut self, resource: Resource) -> EffectSet {
        self.effects.push(Effect {
            mode: AccessMode::Write,
            resource,
        });
        self
    }

    /// Builder: adds a `ReduceAdd` into `resource`.
    pub fn reduce(mut self, resource: Resource) -> EffectSet {
        self.effects.push(Effect {
            mode: AccessMode::ReduceAdd,
            resource,
        });
        self
    }

    /// True when the stage declares no shared-state access.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// Human-readable `{read(shard:c0), reduce-add(dirty:c0)}` form.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self.effects.iter().map(Effect::to_string).collect();
        format!("{{{}}}", parts.join(", "))
    }
}

/// How two unordered effects on the same resource conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Two overwrites, or an overwrite against a reduction: last writer
    /// wins nondeterministically (`race.write-write`).
    WriteWrite,
    /// A read that may observe a concurrent mutation in either order
    /// (`race.read-after-unordered-write`).
    ReadWrite,
    /// Any unordered mutation of a checkpoint dirty-ID set: a sweep that
    /// races an update can persist a shard while dropping its dirty mark
    /// (`race.ckpt-dirty-unordered`).
    CkptDirty,
    /// Two commutative reductions into an allowlisted resource: the final
    /// value is order-independent (`race.benign-commutative`, Info).
    BenignCommutative,
}

impl ConflictKind {
    /// The registered rule id this conflict is reported under.
    pub fn rule_id(self) -> &'static str {
        match self {
            ConflictKind::WriteWrite => "race.write-write",
            ConflictKind::ReadWrite => "race.read-after-unordered-write",
            ConflictKind::CkptDirty => "race.ckpt-dirty-unordered",
            ConflictKind::BenignCommutative => "race.benign-commutative",
        }
    }
}

/// The explicit allowlist of resource kinds whose `ReduceAdd`s commute.
///
/// Gradient scatter-adds into embedding shards and cache-hot rows are
/// order-independent (sparse SGD sums per-micro-batch gradients); dirty-ID
/// sets are deliberately *not* on the list so checkpoint bookkeeping stays
/// strictly ordered against sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceAllowlist {
    /// Resource kinds whose concurrent `ReduceAdd`s are benign.
    pub commutative: Vec<ResourceKind>,
}

impl Default for RaceAllowlist {
    fn default() -> RaceAllowlist {
        RaceAllowlist {
            commutative: vec![ResourceKind::EmbeddingShard, ResourceKind::CacheHot],
        }
    }
}

impl RaceAllowlist {
    /// True when concurrent `ReduceAdd`s into `kind` commute.
    pub fn allows(&self, kind: ResourceKind) -> bool {
        self.commutative.contains(&kind)
    }
}

/// Classifies one pair of effects on the *same* resource. Returns `None`
/// for compatible pairs (e.g. two reads) or effects on distinct resources.
pub fn classify(a: &Effect, b: &Effect, allow: &RaceAllowlist) -> Option<ConflictKind> {
    if a.resource != b.resource {
        return None;
    }
    use AccessMode::*;
    let conflict = match (a.mode, b.mode) {
        (Read, Read) => return None,
        (Write, Write) | (Write, ReduceAdd) | (ReduceAdd, Write) => ConflictKind::WriteWrite,
        (ReduceAdd, ReduceAdd) => {
            if allow.allows(a.resource.kind) {
                ConflictKind::BenignCommutative
            } else {
                ConflictKind::WriteWrite
            }
        }
        (Read, Write) | (Write, Read) | (Read, ReduceAdd) | (ReduceAdd, Read) => {
            ConflictKind::ReadWrite
        }
    };
    // Dirty-ID sets get their own rule: any non-benign conflict on them is
    // a checkpoint-consistency hazard regardless of the mode pair.
    if a.resource.kind == ResourceKind::CkptDirty && conflict != ConflictKind::BenignCommutative {
        return Some(ConflictKind::CkptDirty);
    }
    Some(conflict)
}

/// One conflicting resource between two effect sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// How the pair conflicts.
    pub kind: ConflictKind,
    /// The contended resource.
    pub resource: Resource,
    /// The two access modes involved (in `(a, b)` argument order).
    pub modes: (AccessMode, AccessMode),
}

/// All conflicts between two effect sets, deduplicated by resource with
/// the most severe conflict kind kept (`BenignCommutative` is the least
/// severe and only survives when nothing harder contends the resource).
pub fn conflicts(a: &EffectSet, b: &EffectSet, allow: &RaceAllowlist) -> Vec<Conflict> {
    let mut out: Vec<Conflict> = Vec::new();
    for ea in &a.effects {
        for eb in &b.effects {
            let Some(kind) = classify(ea, eb, allow) else {
                continue;
            };
            let severity = conflict_rank(kind);
            match out.iter_mut().find(|c| c.resource == ea.resource) {
                Some(existing) if conflict_rank(existing.kind) >= severity => {}
                Some(existing) => {
                    existing.kind = kind;
                    existing.modes = (ea.mode, eb.mode);
                }
                None => out.push(Conflict {
                    kind,
                    resource: ea.resource.clone(),
                    modes: (ea.mode, eb.mode),
                }),
            }
        }
    }
    out
}

/// Severity ordering for dedup: hard races outrank the benign downgrade.
fn conflict_rank(kind: ConflictKind) -> u8 {
    match kind {
        ConflictKind::BenignCommutative => 0,
        ConflictKind::ReadWrite => 1,
        ConflictKind::WriteWrite => 2,
        ConflictKind::CkptDirty => 3,
    }
}

/// A stable order-independent signature for a conflicting pair, used to
/// match static findings against observed trace overlap: the rule, the
/// contended resource, and the two op kinds (sorted).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceSig {
    /// Rule id the conflict reports under.
    pub rule: String,
    /// `kind:key` of the contended resource.
    pub resource: String,
    /// Op-kind names of the two stages, lexicographically sorted.
    pub ops: (String, String),
}

impl RaceSig {
    /// Builds a signature; `op_a`/`op_b` are op-kind names in any order.
    pub fn new(rule: &str, resource: &Resource, op_a: &str, op_b: &str) -> RaceSig {
        let (lo, hi) = if op_a <= op_b {
            (op_a, op_b)
        } else {
            (op_b, op_a)
        };
        RaceSig {
            rule: rule.to_string(),
            resource: resource.to_string(),
            ops: (lo.to_string(), hi.to_string()),
        }
    }
}

impl std::fmt::Display for RaceSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} on {} ({} vs {})",
            self.rule, self.resource, self.ops.0, self.ops.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(key: &str) -> Resource {
        Resource::new(ResourceKind::EmbeddingShard, key)
    }

    #[test]
    fn reads_never_conflict() {
        let a = EffectSet::empty().read(shard("c0"));
        let b = EffectSet::empty().read(shard("c0"));
        assert!(conflicts(&a, &b, &RaceAllowlist::default()).is_empty());
    }

    #[test]
    fn distinct_resources_never_conflict() {
        let a = EffectSet::empty().write(shard("c0"));
        let b = EffectSet::empty().write(shard("c1"));
        assert!(conflicts(&a, &b, &RaceAllowlist::default()).is_empty());
        let c = EffectSet::empty().write(Resource::new(ResourceKind::CacheHot, "c0"));
        assert!(conflicts(&a, &c, &RaceAllowlist::default()).is_empty());
    }

    #[test]
    fn write_write_and_write_reduce_are_hard_races() {
        let allow = RaceAllowlist::default();
        let w = EffectSet::empty().write(shard("c0"));
        let r = EffectSet::empty().reduce(shard("c0"));
        for pair in [(&w, &w), (&w, &r), (&r, &w)] {
            let cs = conflicts(pair.0, pair.1, &allow);
            assert_eq!(cs.len(), 1);
            assert_eq!(cs[0].kind, ConflictKind::WriteWrite);
        }
    }

    #[test]
    fn read_against_mutation_is_read_write() {
        let allow = RaceAllowlist::default();
        let rd = EffectSet::empty().read(shard("c0"));
        let wr = EffectSet::empty().write(shard("c0"));
        let ra = EffectSet::empty().reduce(shard("c0"));
        assert_eq!(conflicts(&rd, &wr, &allow)[0].kind, ConflictKind::ReadWrite);
        assert_eq!(conflicts(&ra, &rd, &allow)[0].kind, ConflictKind::ReadWrite);
    }

    #[test]
    fn commutative_reduce_is_benign_only_when_allowlisted() {
        let allow = RaceAllowlist::default();
        let a = EffectSet::empty().reduce(shard("c0"));
        assert_eq!(
            conflicts(&a, &a, &allow)[0].kind,
            ConflictKind::BenignCommutative
        );
        let strict = RaceAllowlist {
            commutative: vec![],
        };
        assert_eq!(conflicts(&a, &a, &strict)[0].kind, ConflictKind::WriteWrite);
    }

    #[test]
    fn dirty_set_conflicts_report_under_their_own_rule() {
        let allow = RaceAllowlist::default();
        let sweep = EffectSet::empty().write(Resource::new(ResourceKind::CkptDirty, "c0"));
        let mark = EffectSet::empty().reduce(Resource::new(ResourceKind::CkptDirty, "c0"));
        let cs = conflicts(&sweep, &mark, &allow);
        assert_eq!(cs[0].kind, ConflictKind::CkptDirty);
        assert_eq!(cs[0].kind.rule_id(), "race.ckpt-dirty-unordered");
        // Dirty sets are off the commutative allowlist: even two marks
        // stay a checkpoint hazard.
        let cs = conflicts(&mark, &mark, &allow);
        assert_eq!(cs[0].kind, ConflictKind::CkptDirty);
    }

    #[test]
    fn dedup_keeps_the_most_severe_conflict_per_resource() {
        let allow = RaceAllowlist::default();
        // a reads and writes c0; b reduces into c0: ReadWrite and
        // WriteWrite both apply; only WriteWrite survives.
        let a = EffectSet::empty().read(shard("c0")).write(shard("c0"));
        let b = EffectSet::empty().reduce(shard("c0"));
        let cs = conflicts(&a, &b, &allow);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ConflictKind::WriteWrite);
    }

    #[test]
    fn race_sig_is_order_independent() {
        let r = shard("c0");
        let s1 = RaceSig::new("race.write-write", &r, "Gather", "EmbeddingScatter");
        let s2 = RaceSig::new("race.write-write", &r, "EmbeddingScatter", "Gather");
        assert_eq!(s1, s2);
        assert_eq!(s1.resource, "shard:c0");
    }

    #[test]
    fn effect_set_renders_compactly() {
        let e = EffectSet::empty()
            .read(shard("c0"))
            .reduce(Resource::new(ResourceKind::CkptDirty, "c0"));
        assert_eq!(e.render(), "{read(shard:c0), reduce-add(dirty:c0)}");
    }
}
