//! May-happen-in-parallel analysis over the lowered stage graph.
//!
//! Two stages *may happen in parallel* (MHP) when neither reaches the
//! other through the transitive closure of the control-dependency edges.
//! The scheduler is free to overlap exactly those pairs — that freedom is
//! the point of D/K-interleaving — so every MHP pair whose declared
//! effect sets conflict ([`crate::effects::conflicts`]) is a potential
//! race and is reported under the `race.*` rules.
//!
//! The relation is computed by a per-node DFS over successor lists
//! (`O(n·(n+e))`), which handles cyclic inputs gracefully: a cycle is
//! already an error under `stage.dependency-cycle`, and nodes on it are
//! mutually reachable, hence ordered, hence never MHP — the race pass
//! stays quiet instead of double-reporting a broken graph.

use crate::effects::{conflicts, Conflict, ConflictKind, RaceAllowlist, RaceSig};
use crate::{Diagnostic, Severity, Span, StageGraph};

/// The transitive ordering relation of a stage graph.
#[derive(Debug, Clone)]
pub struct MhpRelation {
    n: usize,
    /// `reach[i]` holds bit `j` when an ordering path `i -> ... -> j`
    /// exists (irreflexive unless `i` sits on a cycle through itself).
    reach: Vec<Vec<u64>>,
}

impl MhpRelation {
    /// Computes the relation for `n` nodes and the given ordering edges.
    /// Out-of-range endpoints are ignored (the graph rules report them).
    pub fn new(n: usize, edges: &[(usize, usize)]) -> MhpRelation {
        let words = n.div_ceil(64);
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in edges {
            if from < n && to < n {
                succ[from].push(to);
            }
        }
        let mut reach = vec![vec![0u64; words]; n];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..n {
            stack.extend(&succ[i]);
            while let Some(j) = stack.pop() {
                let (word, bit) = (j / 64, 1u64 << (j % 64));
                if reach[i][word] & bit == 0 {
                    reach[i][word] |= bit;
                    stack.extend(&succ[j]);
                }
            }
        }
        MhpRelation { n, reach }
    }

    /// Builds the relation from a [`StageGraph`]'s edges.
    pub fn of_graph(g: &StageGraph) -> MhpRelation {
        let edges: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        MhpRelation::new(g.nodes.len(), &edges)
    }

    /// Number of nodes the relation covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the relation covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when an ordering path `from -> ... -> to` exists.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        from < self.n && to < self.n && self.reach[from][to / 64] & (1u64 << (to % 64)) != 0
    }

    /// True when the pair is ordered in either direction (or identical).
    pub fn ordered(&self, a: usize, b: usize) -> bool {
        a == b || self.reaches(a, b) || self.reaches(b, a)
    }

    /// True when `a` and `b` may happen in parallel: distinct, in range,
    /// and ordered in neither direction.
    pub fn mhp(&self, a: usize, b: usize) -> bool {
        a < self.n && b < self.n && !self.ordered(a, b)
    }

    /// Every MHP pair as `(a, b)` with `a < b`, in index order.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.mhp(a, b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

/// One statically-detected race: an MHP stage pair with conflicting
/// declared effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRace {
    /// Node indices of the unordered pair (`a < b`).
    pub a: usize,
    /// See `a`.
    pub b: usize,
    /// Labels of the two stages.
    pub labels: (String, String),
    /// The conflict that makes the pair a race.
    pub conflict: Conflict,
    /// The order-independent signature used by the trace cross-check.
    pub sig: RaceSig,
}

/// Finds every MHP pair of `g` whose declared effects conflict. Pairs
/// come out in `(a, b)` index order; multiple contended resources on the
/// same pair produce one `StaticRace` each.
pub fn static_races(g: &StageGraph, allow: &RaceAllowlist) -> Vec<StaticRace> {
    let rel = MhpRelation::of_graph(g);
    let mut out = Vec::new();
    // Only nodes with declared effects can participate; skip the pure
    // majority before the quadratic pass.
    let effectful: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| !g.nodes[i].effects.is_empty())
        .collect();
    for (ai, &a) in effectful.iter().enumerate() {
        for &b in &effectful[ai + 1..] {
            if rel.ordered(a, b) {
                continue;
            }
            for conflict in conflicts(&g.nodes[a].effects, &g.nodes[b].effects, allow) {
                let sig = RaceSig::new(
                    conflict.kind.rule_id(),
                    &conflict.resource,
                    &g.nodes[a].kind,
                    &g.nodes[b].kind,
                );
                out.push(StaticRace {
                    a,
                    b,
                    labels: (g.nodes[a].label.clone(), g.nodes[b].label.clone()),
                    conflict,
                    sig,
                });
            }
        }
    }
    out
}

/// Renders static races as `race.*` diagnostics: hard conflicts are
/// errors, the commutative downgrade is informational.
pub fn race_diagnostics(races: &[StaticRace]) -> Vec<Diagnostic> {
    races
        .iter()
        .map(|race| {
            let severity = match race.conflict.kind {
                ConflictKind::BenignCommutative => Severity::Info,
                _ => Severity::Error,
            };
            let (ma, mb) = race.conflict.modes;
            let d = Diagnostic::new(
                race.conflict.kind.rule_id(),
                severity,
                Span::Stage(race.labels.0.clone()),
                format!(
                    "stages `{}` and `{}` may run in parallel (no ordering path) and both \
                     touch {}: {} vs {}",
                    race.labels.0,
                    race.labels.1,
                    race.conflict.resource,
                    ma.name(),
                    mb.name(),
                ),
            );
            match race.conflict.kind {
                ConflictKind::BenignCommutative => d.with_hint(
                    "commutative scatter-adds commute; allowlisted as benign — no edge needed",
                ),
                _ => d.with_hint(
                    "add a control-dependency edge ordering the pair, or declare the access \
                     commutative if a reduction",
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::{EffectSet, Resource, ResourceKind};
    use crate::StageNode;

    fn node(label: &str, effects: EffectSet) -> StageNode {
        StageNode::new(label, "Gather", "host_memory", 1.0, 1).with_effects(effects)
    }

    fn shard(key: &str) -> Resource {
        Resource::new(ResourceKind::EmbeddingShard, key)
    }

    #[test]
    fn chain_is_totally_ordered() {
        // 0 -> 1 -> 2: no MHP pairs.
        let rel = MhpRelation::new(3, &[(0, 1), (1, 2)]);
        assert!(rel.reaches(0, 2));
        assert!(rel.pairs().is_empty());
    }

    #[test]
    fn diamond_arms_are_mhp() {
        // 0 -> {1, 2} -> 3: only (1, 2) is unordered.
        let rel = MhpRelation::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(rel.pairs(), vec![(1, 2)]);
        assert!(rel.mhp(1, 2) && rel.mhp(2, 1));
        assert!(!rel.mhp(1, 1));
    }

    #[test]
    fn cycle_nodes_are_mutually_ordered_not_mhp() {
        let rel = MhpRelation::new(2, &[(0, 1), (1, 0)]);
        assert!(rel.pairs().is_empty());
    }

    #[test]
    fn disconnected_nodes_are_mhp() {
        let rel = MhpRelation::new(2, &[]);
        assert_eq!(rel.pairs(), vec![(0, 1)]);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let rel = MhpRelation::new(2, &[(0, 7), (9, 1)]);
        assert_eq!(rel.pairs(), vec![(0, 1)]);
        assert!(!rel.mhp(0, 7));
    }

    #[test]
    fn unordered_conflicting_pair_is_a_static_race() {
        let mut g = StageGraph::default();
        let a = g.push(node("a/scatter", EffectSet::empty().reduce(shard("c0"))));
        let b = g.push(
            StageNode::new("b/refresh", "CacheRefresh", "device_memory", 1.0, 1)
                .with_effects(EffectSet::empty().write(shard("c0"))),
        );
        let races = static_races(&g, &RaceAllowlist::default());
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].a, races[0].b), (a, b));
        assert_eq!(races[0].conflict.kind, ConflictKind::WriteWrite);
        let diags = race_diagnostics(&races);
        assert_eq!(diags[0].rule, "race.write-write");
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("shard:c0"));
    }

    #[test]
    fn ordering_edge_silences_the_race() {
        let mut g = StageGraph::default();
        let a = g.push(node("a/scatter", EffectSet::empty().reduce(shard("c0"))));
        let b = g.push(node("b/refresh", EffectSet::empty().write(shard("c0"))));
        g.dep(a, b);
        assert!(static_races(&g, &RaceAllowlist::default()).is_empty());
    }

    #[test]
    fn commutative_pair_downgrades_to_info() {
        let mut g = StageGraph::default();
        g.push(node("m0/scatter", EffectSet::empty().reduce(shard("c0"))));
        g.push(node("m1/scatter", EffectSet::empty().reduce(shard("c0"))));
        let races = static_races(&g, &RaceAllowlist::default());
        assert_eq!(races.len(), 1);
        let diags = race_diagnostics(&races);
        assert_eq!(diags[0].rule, "race.benign-commutative");
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn pure_stages_never_race() {
        let mut g = StageGraph::default();
        g.push(node("a", EffectSet::empty()));
        g.push(node("b", EffectSet::empty().write(shard("c0"))));
        assert!(static_races(&g, &RaceAllowlist::default()).is_empty());
    }
}
