//! # picasso-lint
//!
//! A rule-based static analyzer for the PICASSO reproduction. The
//! optimizations only pay off when their structural preconditions hold —
//! D-Packing requires dim-homogeneous chains (Eq. 1), K-Packing must fuse
//! only within one hardware resource class (Fig. 7), and K-Interleaving's
//! chained control dependencies (Eq. 3 groups, Fig. 8c) must stay acyclic
//! or the scheduler silently serializes. This crate turns those invariants
//! into named, testable rules.
//!
//! The crate is a *foundation* layer: it owns the [`Diagnostic`] model
//! (rule id, severity, span, message, fix hint), the [`rules`] registry
//! describing every rule across the three analysis surfaces, the
//! [`LintReport`] JSON/text renderers, and a generic [`StageGraph`] model
//! with the stage-surface rules. The traversals that *produce* spec and
//! plan diagnostics live next to the data they inspect (`picasso-graph`'s
//! `lint` module); the lowered stage graph is built by `picasso-exec`.
//!
//! Three analysis surfaces (see [`rules::Surface`]):
//!
//! - **spec** — invariants of a `WdlSpec` before any pass runs: field
//!   single-assignment, dangling module inputs, dim homogeneity,
//!   zero-cardinality chains, unused fields.
//! - **plan** — invariants of a planned pass pipeline: Eq. 2 micro-batch
//!   divisibility, Eq. 3 group capacity, excluded-table consistency,
//!   packing-after-interleaving ordering, enabled-but-no-op passes.
//! - **stage** — invariants of the lowered execution graph: control-
//!   dependency cycles, cross-resource-class fusion, unreachable stages,
//!   cost-model sanity.
//! - **race** — may-happen-in-parallel conflicts over declared effect
//!   sets ([`effects`], [`mhp`]): unordered stage pairs that both touch
//!   an embedding shard, cache hot storage, optimizer state, a dirty-ID
//!   set, or a collective buffer.

#![warn(missing_docs)]

mod diag;
pub mod effects;
pub mod mhp;
mod report;
pub mod rules;
mod stage_graph;

pub use diag::{Diagnostic, Severity, Span};
pub use effects::{AccessMode, Effect, EffectSet, RaceAllowlist, Resource, ResourceKind};
pub use mhp::{MhpRelation, StaticRace};
pub use report::LintReport;
pub use stage_graph::{StageEdge, StageFusion, StageGraph, StageNode};
