//! Aggregated lint results with JSON and text rendering.

use crate::diag::escape_control;
use crate::{Diagnostic, Severity};
use picasso_obs::json::{self, Json};

/// Schema version stamped into the JSON form.
pub const LINT_REPORT_SCHEMA_VERSION: u32 = 1;

/// A collection of diagnostics with severity accounting and renderers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over `diagnostics`, sorted worst-first (then by rule id)
    /// so rendering is deterministic regardless of emission order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(&b.rule))
                .then_with(|| a.message.cmp(&b.message))
        });
        LintReport { diagnostics }
    }

    /// All diagnostics, worst-first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error-severity subset.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.at(Severity::Error)
    }

    /// The warn-severity subset.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.at(Severity::Warn)
    }

    fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// How many diagnostics sit at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.at(severity).count()
    }

    /// True when there are no error-severity diagnostics. (Warnings and
    /// infos do not make a report dirty.)
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// True when there are no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The structured JSON form (`picasso.lint_report`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "schema_version",
                Json::UInt(LINT_REPORT_SCHEMA_VERSION as u64),
            ),
            ("kind", Json::str("picasso.lint_report")),
            (
                "counts",
                Json::obj([
                    ("error", Json::UInt(self.count(Severity::Error) as u64)),
                    ("warn", Json::UInt(self.count(Severity::Warn) as u64)),
                    ("info", Json::UInt(self.count(Severity::Info) as u64)),
                ]),
            ),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }

    /// Rebuilds a report from [`LintReport::to_json`] output.
    pub fn from_json(v: &Json) -> Option<LintReport> {
        if v.get("kind")?.as_str()? != "picasso.lint_report" {
            return None;
        }
        let diagnostics = v
            .get("diagnostics")?
            .items()?
            .iter()
            .map(Diagnostic::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(LintReport::new(diagnostics))
    }

    /// Parses the serialized JSON text form.
    pub fn parse(text: &str) -> Option<LintReport> {
        LintReport::from_json(&json::parse(text).ok()?)
    }

    /// Plain-text rendering: one line per diagnostic plus a summary line.
    /// Control characters are escaped (see [`Diagnostic`]'s `Display`).
    pub fn render_text(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("lint: {}\n", escape_control(title)));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out.push_str(&format!(
            "  {} error(s), {} warning(s), {} info(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        ));
        out
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_text("report"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn sample() -> LintReport {
        LintReport::new(vec![
            Diagnostic::new(
                "spec.unused-field",
                Severity::Warn,
                Span::Chain(0),
                "field 3 is consumed by no module",
            ),
            Diagnostic::new(
                "spec.duplicate-field",
                Severity::Error,
                Span::Chain(1),
                "field 7 already produced by chain 0",
            )
            .with_hint("assign field 7 to exactly one chain"),
            Diagnostic::new(
                "plan.micro-uneven",
                Severity::Info,
                Span::Pass("d_interleaving".into()),
                "1000 instances over 3 micro-batches leaves a remainder",
            ),
        ])
    }

    #[test]
    fn sorts_worst_first_and_counts_by_severity() {
        let r = sample();
        assert_eq!(r.diagnostics()[0].severity, Severity::Error);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(!r.is_clean());
        assert!(LintReport::new(vec![]).is_clean());
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let text = r.to_json().to_json();
        let back = LintReport::parse(&text).expect("round-trip parse");
        assert_eq!(back, r);
        // And the counts survive in the serialized form itself.
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("counts").unwrap().get("error").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(v.get("kind").unwrap().as_str(), Some("picasso.lint_report"));
    }

    #[test]
    fn from_json_rejects_foreign_payloads() {
        let v = Json::obj([("kind", Json::str("picasso.table"))]);
        assert!(LintReport::from_json(&v).is_none());
    }

    #[test]
    fn text_rendering_escapes_control_characters() {
        let r = LintReport::new(vec![Diagnostic::new(
            "spec.duplicate-field",
            Severity::Error,
            Span::Spec,
            "bad\u{1b}[31mname\r\n",
        )]);
        let text = r.render_text("scenario\twith\ttabs");
        assert!(!text.contains('\u{1b}'), "ANSI escape leaked: {text:?}");
        assert!(!text.contains('\r'));
        assert!(text.contains("bad\\u{1b}[31mname\\u{0d}\\u{0a}"));
        assert!(text.contains("scenario\\u{09}with\\u{09}tabs"));
        assert!(text.ends_with("1 error(s), 0 warning(s), 0 info(s)\n"));
    }

    #[test]
    fn json_escapes_control_characters_in_messages() {
        let r = LintReport::new(vec![Diagnostic::new(
            "spec.duplicate-field",
            Severity::Error,
            Span::Spec,
            "line\nbreak",
        )]);
        let text = r.to_json().to_json();
        assert!(!text.contains('\n'), "raw newline in JSON output: {text:?}");
        let back = LintReport::parse(&text).unwrap();
        assert_eq!(back.diagnostics()[0].message, "line\nbreak");
    }
}
