//! The structured diagnostic model shared by every analysis surface.

use picasso_obs::json::Json;
use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// `Error` diagnostics abort a run before scheduling (`TrainError::Lint`,
/// repro exit code 4); `Warn` and `Info` flow into the observability run
/// report but never block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: worth surfacing, never actionable on its own.
    Info,
    /// Suspicious but survivable; the run proceeds.
    Warn,
    /// A broken invariant; the run must not proceed.
    Error,
}

impl Severity {
    /// Stable lowercase name used in JSON and text rendering.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the stable name back (inverse of [`Severity::name`]).
    pub fn parse(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a diagnostic points at.
///
/// There is no source text in this system, so spans name structural
/// locations instead of byte ranges: a chain or module index inside the
/// spec, a pass in the pipeline, or a stage in the lowered graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Span {
    /// The spec as a whole.
    Spec,
    /// The `i`-th embedding chain of the spec.
    Chain(usize),
    /// The `i`-th interaction module of the spec.
    Module(usize),
    /// A pass in the pipeline, by stable pass name.
    Pass(String),
    /// A stage in the lowered execution graph, by stage label.
    Stage(String),
    /// A run-configuration surface (fault plan / checkpoint policy), by
    /// the offending flag or field name.
    Run(String),
}

impl Span {
    fn to_json(&self) -> Json {
        match self {
            Span::Spec => Json::obj([("kind", Json::str("spec"))]),
            Span::Chain(i) => Json::obj([
                ("kind", Json::str("chain")),
                ("index", Json::UInt(*i as u64)),
            ]),
            Span::Module(i) => Json::obj([
                ("kind", Json::str("module")),
                ("index", Json::UInt(*i as u64)),
            ]),
            Span::Pass(name) => Json::obj([("kind", Json::str("pass")), ("name", Json::str(name))]),
            Span::Stage(label) => {
                Json::obj([("kind", Json::str("stage")), ("name", Json::str(label))])
            }
            Span::Run(field) => Json::obj([("kind", Json::str("run")), ("name", Json::str(field))]),
        }
    }

    fn from_json(v: &Json) -> Option<Span> {
        let kind = v.get("kind")?.as_str()?;
        let index = || v.get("index").and_then(Json::as_u64).map(|i| i as usize);
        let name = || v.get("name").and_then(Json::as_str).map(str::to_string);
        match kind {
            "spec" => Some(Span::Spec),
            "chain" => Some(Span::Chain(index()?)),
            "module" => Some(Span::Module(index()?)),
            "pass" => Some(Span::Pass(name()?)),
            "stage" => Some(Span::Stage(name()?)),
            "run" => Some(Span::Run(name()?)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Spec => write!(f, "spec"),
            Span::Chain(i) => write!(f, "chain#{i}"),
            Span::Module(i) => write!(f, "module#{i}"),
            Span::Pass(name) => write!(f, "pass:{name}"),
            Span::Stage(label) => write!(f, "stage:{label}"),
            Span::Run(field) => write!(f, "run:{field}"),
        }
    }
}

/// One finding: a rule id, a severity, a structural span, a human message,
/// and an optional fix hint.
///
/// Fields are plain strings/enums (no floats) so diagnostics stay `Eq` and
/// can ride inside `TrainError` variants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule id (`surface.rule-name`, e.g. `spec.duplicate-field`);
    /// every id is described in [`crate::rules`].
    pub rule: String,
    /// How bad the finding is.
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable description of the violation.
    pub message: String,
    /// Suggested fix, empty when there is no mechanical suggestion.
    pub hint: String,
}

impl Diagnostic {
    /// A new diagnostic with no fix hint.
    pub fn new(
        rule: &str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity,
            span,
            message: message.into(),
            hint: String::new(),
        }
    }

    /// Attaches a fix hint (builder style).
    pub fn with_hint(mut self, hint: impl Into<String>) -> Diagnostic {
        self.hint = hint.into();
        self
    }

    /// The structured JSON form used by `--lint-json` and the run report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::str(&self.rule)),
            ("severity", Json::str(self.severity.name())),
            ("span", self.span.to_json()),
            ("message", Json::str(&self.message)),
            ("hint", Json::str(&self.hint)),
        ])
    }

    /// Rebuilds a diagnostic from [`Diagnostic::to_json`] output.
    pub fn from_json(v: &Json) -> Option<Diagnostic> {
        Some(Diagnostic {
            rule: v.get("rule")?.as_str()?.to_string(),
            severity: Severity::parse(v.get("severity")?.as_str()?)?,
            span: Span::from_json(v.get("span")?)?,
            message: v.get("message")?.as_str()?.to_string(),
            hint: v.get("hint")?.as_str()?.to_string(),
        })
    }
}

impl std::fmt::Display for Diagnostic {
    /// One text line: `error[spec.duplicate-field] chain#1: message (fix:
    /// hint)`. Control characters in the message/hint are escaped as
    /// `\u{..}` so a hostile spec name cannot corrupt terminal output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.rule,
            self.span,
            escape_control(&self.message)
        )?;
        if !self.hint.is_empty() {
            write!(f, " (fix: {})", escape_control(&self.hint))?;
        }
        Ok(())
    }
}

/// Escapes ASCII control characters as `\u{..}` (and backslash as `\\` so
/// the escaping stays unambiguous), mirroring the JSON escaper in
/// `picasso-obs`.
pub(crate) fn escape_control(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c == '\\' {
            out.push_str("\\\\");
        } else if (c as u32) < 0x20 || c == '\u{7f}' {
            out.push_str(&format!("\\u{{{:02x}}}", c as u32));
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_warn_below_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn severity_names_round_trip() {
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn span_json_round_trips_every_variant() {
        let spans = [
            Span::Spec,
            Span::Chain(3),
            Span::Module(0),
            Span::Pass("k_interleaving".into()),
            Span::Stage("chain2/shuffle".into()),
            Span::Run("fault-plan".into()),
        ];
        for span in spans {
            assert_eq!(Span::from_json(&span.to_json()), Some(span));
        }
    }

    #[test]
    fn diagnostic_display_includes_rule_span_and_hint() {
        let d = Diagnostic::new(
            "spec.duplicate-field",
            Severity::Error,
            Span::Chain(1),
            "field 7 already produced by chain 0",
        )
        .with_hint("assign field 7 to exactly one chain");
        let line = d.to_string();
        assert!(line.starts_with("error[spec.duplicate-field] chain#1:"));
        assert!(line.contains("(fix: assign field 7"));
    }

    #[test]
    fn display_escapes_control_characters() {
        let d = Diagnostic::new(
            "spec.duplicate-field",
            Severity::Warn,
            Span::Spec,
            "evil\nname\u{7}",
        );
        let line = d.to_string();
        assert!(!line.contains('\n'));
        assert!(!line.contains('\u{7}'));
        assert!(line.contains("evil\\u{0a}name\\u{07}"));
    }

    #[test]
    fn display_escapes_backslash_unambiguously() {
        let d = Diagnostic::new("x", Severity::Info, Span::Spec, "a\\u{0a}b");
        // A literal backslash in the message must not read back as an
        // escaped newline.
        assert!(d.to_string().contains("a\\\\u{0a}b"));
    }
}
