//! The rule registry: every rule id the analyzer can emit, its surface,
//! default severity, and paper grounding.
//!
//! Rule ids are stable strings of the form `surface.rule-name`. The
//! registry is the single source of truth for documentation (`DESIGN.md`
//! §11 is generated from the same facts) and lets renderers and tests
//! check that no diagnostic is emitted under an unregistered id.

use crate::Severity;

/// Which artifact a rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// The `WdlSpec` before any pass runs.
    Spec,
    /// A planned pass pipeline (`PlanContext` + pass reports).
    Plan,
    /// The lowered execution stage graph.
    Stage,
    /// A run configuration (fault plan + checkpoint policy).
    Run,
    /// The may-happen-in-parallel relation over declared effect sets
    /// (static over the stage graph, dynamic via the trace cross-check).
    Race,
}

impl Surface {
    /// Stable lowercase name (also the rule-id prefix).
    pub fn name(self) -> &'static str {
        match self {
            Surface::Spec => "spec",
            Surface::Plan => "plan",
            Surface::Stage => "stage",
            Surface::Run => "run",
            Surface::Race => "race",
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id, `surface.rule-name`.
    pub id: &'static str,
    /// Which artifact the rule inspects.
    pub surface: Surface,
    /// Severity the rule emits at (fixed per rule).
    pub severity: Severity,
    /// One-line description.
    pub summary: &'static str,
    /// Where in the paper the invariant comes from.
    pub grounding: &'static str,
}

/// Every rule the analyzer can emit, grouped by surface.
pub const RULES: &[RuleInfo] = &[
    // ------------------------------------------------------------------
    // Spec surface.
    // ------------------------------------------------------------------
    RuleInfo {
        id: "spec.duplicate-field",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "a feature field is produced by more than one embedding chain",
        grounding: "Eq. 1 sharding assigns each field to exactly one packed shard",
    },
    RuleInfo {
        id: "spec.dangling-input",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "an interaction module consumes a field no chain produces",
        grounding: "Fig. 2 WDL dataflow: every module input is an embedding output",
    },
    RuleInfo {
        id: "spec.empty-chain",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "an embedding chain produces no fields",
        grounding: "a chain with no fields lowers to zero-volume stages that still gate groups",
    },
    RuleInfo {
        id: "spec.no-input-module",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "an interaction module consumes zero fields",
        grounding: "Fig. 2 WDL dataflow: interaction ops combine embedding outputs",
    },
    RuleInfo {
        id: "spec.zero-cardinality",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "a chain has no tables, a zero embedding dim, or no ids per instance",
        grounding: "Eq. 1/§III-B: packed shards are sized by table count × dim × lookups",
    },
    RuleInfo {
        id: "spec.dim-mismatch",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "a chain packs tables whose embedding dims disagree with the chain dim",
        grounding: "Eq. 1: D-Packing merges only dim-homogeneous tables into one shard",
    },
    RuleInfo {
        id: "spec.unused-field",
        surface: Surface::Spec,
        severity: Severity::Warn,
        summary: "a produced field is consumed by no interaction module",
        grounding: "dead embedding output wastes Gather/Shuffle volume (§III-B)",
    },
    RuleInfo {
        id: "spec.zero-micro-batches",
        surface: Surface::Spec,
        severity: Severity::Error,
        summary: "micro_batches is zero",
        grounding: "Eq. 2: D-Interleaving divides the batch into at least one micro-batch",
    },
    RuleInfo {
        id: "spec.group-dep-range",
        surface: Surface::Spec,
        severity: Severity::Warn,
        summary: "a declared group dependency references a group no chain belongs to",
        grounding: "Fig. 8c: control dependencies only exist between populated groups",
    },
    // ------------------------------------------------------------------
    // Plan surface.
    // ------------------------------------------------------------------
    RuleInfo {
        id: "plan.pass-duplicate",
        surface: Surface::Plan,
        severity: Severity::Error,
        summary: "the same pass is listed twice in the pipeline",
        grounding: "§III passes are idempotent rewrites; re-running one double-applies Eq. 1/2/3",
    },
    RuleInfo {
        id: "plan.pass-order",
        surface: Surface::Plan,
        severity: Severity::Error,
        summary: "a packing pass runs after an interleaving pass",
        grounding: "§III-C: interleaving groups are formed over the packed graph",
    },
    RuleInfo {
        id: "plan.micro-split",
        surface: Surface::Plan,
        severity: Severity::Error,
        summary: "the derived micro-batch count cannot split the Eq. 2 base batch",
        grounding: "Eq. 2: micro-batches partition the batch; more splits than instances is degenerate",
    },
    RuleInfo {
        id: "plan.micro-uneven",
        surface: Surface::Plan,
        severity: Severity::Info,
        summary: "the base batch does not divide evenly into the derived micro-batches",
        grounding: "Eq. 2 assumes equal micro-batches; a remainder skews the last split",
    },
    RuleInfo {
        id: "plan.group-capacity",
        surface: Surface::Plan,
        severity: Severity::Warn,
        summary: "an explicit group count leaves per-group volume above the Eq. 3 capacity",
        grounding: "Eq. 3: RBound/RParam bounds the parameters one group may move per window",
    },
    RuleInfo {
        id: "plan.excluded-unknown",
        surface: Surface::Plan,
        severity: Severity::Warn,
        summary: "an excluded table id is covered by no chain",
        grounding: "§III-C preset excluded embedding must name real tables to take effect",
    },
    RuleInfo {
        id: "plan.noop-pass",
        surface: Surface::Plan,
        severity: Severity::Warn,
        summary: "an enabled pass planned a no-op",
        grounding: "an enabled-but-inert pass (1 group, 1 micro-batch, empty pack map) hides a config mistake",
    },
    // ------------------------------------------------------------------
    // Stage surface.
    // ------------------------------------------------------------------
    RuleInfo {
        id: "stage.dependency-cycle",
        surface: Surface::Stage,
        severity: Severity::Error,
        summary: "the control-dependency graph contains a cycle",
        grounding: "Fig. 8c chained control dependencies must stay acyclic or scheduling deadlocks",
    },
    RuleInfo {
        id: "stage.cross-class-fusion",
        surface: Surface::Stage,
        severity: Severity::Error,
        summary: "a fused kernel spans more than one hardware resource class",
        grounding: "Fig. 7: K-Packing fuses ops bound by the same resource (e.g. Shuffle+Stitch on interconnect)",
    },
    RuleInfo {
        id: "stage.unreachable",
        surface: Surface::Stage,
        severity: Severity::Warn,
        summary: "a stage is unreachable from the graph entry points",
        grounding: "a disconnected stage never runs; its predicted cost silently vanishes from the makespan",
    },
    RuleInfo {
        id: "stage.cost-sanity",
        surface: Surface::Stage,
        severity: Severity::Error,
        summary: "a stage predicts a negative or non-finite cost",
        grounding: "§IV calibration divides by predicted cost; bad values corrupt the fit",
    },
    RuleInfo {
        id: "stage.zero-cost",
        surface: Surface::Stage,
        severity: Severity::Warn,
        summary: "a stage predicts exactly zero cost (no work and no launches)",
        grounding: "§IV calibration: a zero-cost stage yields an undefined observed/predicted ratio",
    },
    // ------------------------------------------------------------------
    // Run surface.
    // ------------------------------------------------------------------
    RuleInfo {
        id: "run.fault-without-ckpt",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "the fault plan schedules a worker crash but checkpointing is disabled",
        grounding: "without a checkpoint every crash restarts training from iteration 0",
    },
    RuleInfo {
        id: "run.ckpt-beyond-horizon",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "the checkpoint interval exceeds the configured iteration count",
        grounding: "a run shorter than one checkpoint interval never persists any state",
    },
    RuleInfo {
        id: "run.low-overlap",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "achieved comm-under-compute overlap fell far below the planned interleaving",
        grounding: "§V D/K-interleaving plans 1-1/(DK) of communication hidden under compute; \
                    a large shortfall means packing or scheduling failed to realize the plan",
    },
    RuleInfo {
        id: "run.idle-dominant-resource",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "a resource lane on the critical path spent most of the run idle",
        grounding: "§III packing exists to keep the dominant resource busy; an idle-dominated \
                    critical lane indicates serialization the executed DAG can localize",
    },
    RuleInfo {
        id: "run.flight-overflow",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "the flight recorder overwrote admitted events before a post-mortem captured them",
        grounding: "a post-mortem dump can only replay what the ring still holds; overwritten \
                    history is unrecoverable after a crash",
    },
    RuleInfo {
        id: "run.hot-path-alloc",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "the lowered graph implies a per-iteration simulator task count above the \
                  engine's preallocation budget",
        grounding: "the event engine preallocates its task columns, ready queues, and channel \
                    tables from the task census; a census past the budget pushes setup cost and \
                    memory footprint into territory where the run spends more time building \
                    state than simulating it",
    },
    RuleInfo {
        id: "run.backward-stage-in-serving",
        surface: Surface::Run,
        severity: Severity::Error,
        summary: "a forward-only serving graph contains a stage that mutates model state \
                  (gradient, optimizer, or checkpoint stage)",
        grounding: "serving shares the training lowering up to the MLP forward; any stage \
                    writing embedding shards, dense parameters, optimizer state, or dirty \
                    sets past that point is a training stage that leaked into inference",
    },
    RuleInfo {
        id: "run.serve-no-admission",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "the serving request queue is unbounded (no admission control)",
        grounding: "in an open-loop arrival model a queue without a capacity bound grows \
                    without limit under overload, stretching every queued request's latency \
                    instead of shedding deterministically",
    },
    RuleInfo {
        id: "run.regressing-trend",
        surface: Surface::Run,
        severity: Severity::Warn,
        summary: "a gated metric shows a sustained change-point in the regressing direction \
                  across recent runs",
        grounding: "single-run gates miss slow drift; a CUSUM change-point over the run history \
                    catches regressions the per-run tolerance band absorbs",
    },
    // ------------------------------------------------------------------
    // Race surface.
    // ------------------------------------------------------------------
    RuleInfo {
        id: "race.write-write",
        surface: Surface::Race,
        severity: Severity::Error,
        summary: "two unordered stages both mutate the same resource (last writer wins \
                  nondeterministically)",
        grounding: "§III overlap runs gathers, collectives, and dense compute concurrently; \
                    an unordered write pair on one shard is a silent lost update",
    },
    RuleInfo {
        id: "race.read-after-unordered-write",
        surface: Surface::Race,
        severity: Severity::Error,
        summary: "a stage reads a resource a concurrent unordered stage mutates",
        grounding: "a gather overlapping an unordered scatter/refresh observes either old or \
                    new rows depending on scheduling luck",
    },
    RuleInfo {
        id: "race.ckpt-dirty-unordered",
        surface: Surface::Race,
        severity: Severity::Error,
        summary: "a checkpoint dirty-ID set is mutated without ordering against its sweep",
        grounding: "an incremental-checkpoint sweep racing a dirty mark can persist a shard \
                    while dropping the mark, losing the update on recovery",
    },
    RuleInfo {
        id: "race.benign-commutative",
        surface: Surface::Race,
        severity: Severity::Info,
        summary: "two unordered commutative scatter-adds into an allowlisted resource (order \
                  cannot change the final value)",
        grounding: "sparse-SGD gradient scatter-adds commute; the explicit allowlist keeps \
                    the downgrade auditable",
    },
    RuleInfo {
        id: "race.undeclared-overlap",
        surface: Surface::Race,
        severity: Severity::Error,
        summary: "executed-trace replay observed a conflicting overlap the declared effects \
                  do not predict",
        grounding: "the causal event log records what actually overlapped; an undeclared \
                    conflict means the effect annotations have rotted",
    },
    RuleInfo {
        id: "race.mhp-imprecision",
        surface: Surface::Race,
        severity: Severity::Info,
        summary: "a statically-MHP conflicting pair never overlapped in any seeded run",
        grounding: "the static relation over-approximates the scheduler; pairs that never \
                    co-run flag where a modeled ordering edge is missing from the graph",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_prefixed_by_surface() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            let prefix = format!("{}.", r.surface.name());
            assert!(
                r.id.starts_with(&prefix),
                "rule {} does not start with its surface prefix {prefix}",
                r.id
            );
        }
    }

    #[test]
    fn registry_covers_all_surfaces_with_ten_plus_rules() {
        assert!(
            RULES.len() >= 10,
            "expected >= 10 rules, got {}",
            RULES.len()
        );
        for surface in [
            Surface::Spec,
            Surface::Plan,
            Surface::Stage,
            Surface::Run,
            Surface::Race,
        ] {
            assert!(
                RULES.iter().any(|r| r.surface == surface),
                "no rules registered for surface {}",
                surface.name()
            );
        }
    }

    #[test]
    fn every_rule_documents_summary_and_grounding() {
        for r in RULES {
            assert!(!r.summary.is_empty(), "{} has no summary", r.id);
            assert!(!r.grounding.is_empty(), "{} has no grounding", r.id);
        }
    }

    #[test]
    fn lookup_finds_known_rules_only() {
        assert!(rule("spec.duplicate-field").is_some());
        assert!(rule("stage.dependency-cycle").is_some());
        assert!(rule("race.write-write").is_some());
        assert!(rule("spec.not-a-rule").is_none());
    }

    #[test]
    fn every_rule_id_is_documented_in_design_md() {
        // Doc-drift catch: DESIGN.md's rule tables (§11, §13–§17) must
        // name every registered rule id.
        let design = include_str!("../../../DESIGN.md");
        for r in RULES {
            assert!(
                design.contains(r.id),
                "rule {} is not documented in DESIGN.md",
                r.id
            );
        }
    }
}
