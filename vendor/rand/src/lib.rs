//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! handful of `rand` features the repo uses are reimplemented here behind the
//! same names: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is SplitMix64 — statistically solid for the seeded,
//! reproducibility-oriented sampling this workspace performs (Zipf inversion,
//! synthetic labels, weight init). The exact stream differs from upstream
//! `StdRng` (ChaCha12); all in-repo consumers assert distributional
//! properties, not exact draws.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draws a uniform value of a supported type.
    fn r#gen<T>(&mut self) -> T
    where
        Range<T>: SampleRange<T>,
        T: Unit,
    {
        T::unit_range().sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical unit sampling range (for [`Rng::gen`]).
pub trait Unit: Sized {
    /// The range `gen()` draws from.
    fn unit_range() -> Range<Self>;
}

impl Unit for f64 {
    fn unit_range() -> Range<f64> {
        0.0..1.0
    }
}

impl Unit for f32 {
    fn unit_range() -> Range<f32> {
        0.0..1.0
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avalanche the seed once so small seeds diverge immediately.
            let mut r = StdRng { state: seed };
            r.next_u64();
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(0.0f64..3.5);
            assert!((0.0..3.5).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
