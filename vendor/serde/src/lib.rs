//! Offline vendored subset of `serde`.
//!
//! The workspace tags config/spec types with `#[derive(Serialize,
//! Deserialize)]` as a schema marker; no serializer crate is in the
//! dependency tree, so the traits are never exercised at runtime. This stub
//! provides the trait names plus no-op derive macros so those annotations
//! compile in the network-less build container.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
