//! Offline vendored `serde_derive`: the workspace derives `Serialize` /
//! `Deserialize` purely as schema markers (no serializer crate is linked, so
//! no serde impl is ever invoked). These derives therefore expand to nothing,
//! which keeps the annotated types compiling without the real proc-macro
//! stack (syn/quote) that the offline container cannot fetch.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
