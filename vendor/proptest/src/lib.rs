//! Offline vendored subset of the `proptest` API.
//!
//! Re-implements the pieces of proptest this workspace's property tests use
//! — the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! and `Vec` strategies, [`collection::vec`], `bool::ANY`, the `proptest!`
//! macro, and `prop_assert!`/`prop_assert_eq!` — on top of a deterministic
//! per-test RNG. There is no shrinking: a failing case panics with the
//! generated inputs in the assertion message (inputs derive `Debug` at the
//! call sites). Case counts default to [`ProptestConfig::default`] and can be
//! overridden with `#![proptest_config(...)]` exactly like upstream.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one generated case of one named test: seeded from the test
    /// path and case index so runs are reproducible and order-independent.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the simulations under test here are
        // heavyweight, so trade a little coverage for wall-clock.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: length in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assumes a condition: cases violating it are skipped.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            #[allow(clippy::redundant_closure_call)]
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                #[allow(unused_parens)]
                let ($($arg),+) = {
                    let ($(ref $arg,)+) = strategies;
                    ($($crate::Strategy::generate($arg, &mut __rng)),+)
                };
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("t", 0);
        let s = (1usize..4, 0.0f64..2.0);
        for _ in 0..100 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((0.0..2.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_case("v", 1);
        let s = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_feeds_intermediate() {
        let mut rng = crate::TestRng::for_case("f", 2);
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0usize..n, n..n + 1));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&x| x < v.len() || x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro itself: bindings, doc comments, and trailing commas.
        #[test]
        fn macro_generates_cases(x in 0u64..100, ys in crate::collection::vec(0u64..10, 0..4),) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
        }
    }
}
