//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides the surface the workspace's bench targets use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! mean-over-samples wall-clock measurement instead of criterion's full
//! statistical machinery. Good enough to smoke the bench targets and print
//! comparable numbers in the network-less container; swap the real crate
//! back in for publication-grade statistics.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            samples: 10,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Honoured for API compatibility; CLI filtering is not implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_override: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let report = run_bench(self.warm_up, self.measurement, self.samples, &mut f);
        println!("{name:<40} {report}");
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_override = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_override.unwrap_or(self.criterion.samples);
        let report = run_bench(
            self.criterion.warm_up,
            self.criterion.measurement,
            samples,
            &mut f,
        );
        println!("{}/{name:<30} {report}", self.name);
        self
    }

    /// Finishes the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, recording mean/min/max time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let budget = self.measurement.max(Duration::from_millis(1));
        let per_sample = budget / self.samples as u32;
        let mut times = Vec::with_capacity(self.samples);
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let mut n = 0u64;
            let start = Instant::now();
            loop {
                black_box(routine());
                n += 1;
                if start.elapsed() >= per_sample {
                    break;
                }
            }
            times.push(start.elapsed() / n as u32);
            iters += n;
        }
        let min = *times.iter().min().expect("samples >= 2");
        let max = *times.iter().max().expect("samples >= 2");
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        self.result = Some(Sample {
            mean,
            min,
            max,
            iters,
        });
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    f: &mut F,
) -> String {
    let mut b = Bencher {
        warm_up,
        measurement,
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => format!(
            "time: [{} {} {}]  ({} iters)",
            fmt_duration(s.min),
            fmt_duration(s.mean),
            fmt_duration(s.max),
            s.iters
        ),
        None => "no measurement (Bencher::iter never called)".to_string(),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4))
            .sample_size(2);
        targets = unit
    }

    #[test]
    fn group_macro_runs() {
        quick();
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
